//! A two-pass MIPS assembler.
//!
//! Supports the full Plasma subset of [`crate::isa`], labels, the
//! directives `.org`, `.word` and `.space`, and the usual convenience
//! pseudo-instructions (`nop`, `li`, `la`, `move`, `not`, `neg`, `b`,
//! `beqz`, `bnez`). Comments start with `#` or `;`.
//!
//! The self-test program generators in the `sbst` crate emit assembly text
//! and run it through this assembler, exactly as the paper's flow hands
//! hand-written routines to a MIPS toolchain.

use std::collections::HashMap;
use std::fmt;

use crate::isa::{Format, Instr, Op, Reg};

/// An assembled program image.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Byte address the image is loaded at (always 0 — the reset vector).
    pub base: u32,
    /// Instruction/data words, contiguous from `base` (gaps from `.org`
    /// are zero-filled).
    pub words: Vec<u32>,
    /// Number of words actually emitted (instructions and `.word` data,
    /// excluding `.org` gaps and `.space` reservations) — what a tester
    /// downloads.
    pub download_words: usize,
    /// Label values (byte addresses).
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Size of the memory image in 32-bit words (including `.org` gaps).
    pub fn size_words(&self) -> usize {
        self.words.len()
    }

    /// Downloaded size in 32-bit words — the paper's "test program
    /// (words)" metric (Table 4). A tester transfers only emitted words,
    /// not address gaps.
    pub fn size_download_words(&self) -> usize {
        self.download_words
    }

    /// Look up a label's byte address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

/// Assembly error with 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, PartialEq)]
enum Arg {
    Reg(Reg),
    Imm(i64),
    Label(String),
    MemRef { offset: i64, base: Reg },
}

#[derive(Debug, Clone)]
enum Item {
    Instr {
        line: usize,
        mnemonic: String,
        args: Vec<Arg>,
    },
    Word(Vec<Arg>, usize),
    Space(usize),
    Org(u32),
    Label(String, usize),
}

/// Assemble MIPS source text into a [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonics or
/// registers, malformed operands, out-of-range immediates or branch
/// offsets, duplicate or undefined labels, and misuse of directives.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let items = parse(source)?;

    // Pass 1: assign addresses.
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut pc: u32 = 0;
    for item in &items {
        match item {
            Item::Label(name, line) => {
                if symbols.insert(name.clone(), pc).is_some() {
                    return Err(AsmError {
                        line: *line,
                        message: format!("duplicate label `{name}`"),
                    });
                }
            }
            Item::Instr {
                line,
                mnemonic,
                args,
            } => {
                pc += 4 * instr_size_words(mnemonic, args).map_err(|m| AsmError {
                    line: *line,
                    message: m,
                })? as u32;
            }
            Item::Word(vals, _) => pc += 4 * vals.len() as u32,
            Item::Space(words) => pc += 4 * *words as u32,
            Item::Org(addr) => pc = *addr,
        }
    }

    // Pass 2: emit.
    let mut words: Vec<u32> = Vec::new();
    let mut download_words: usize = 0;
    let mut pc: u32 = 0;
    let emit = |words: &mut Vec<u32>, pc: &mut u32, w: u32| {
        let idx = (*pc / 4) as usize;
        if words.len() <= idx {
            words.resize(idx + 1, 0);
        }
        words[idx] = w;
        *pc += 4;
    };
    for item in &items {
        match item {
            Item::Label(..) => {}
            Item::Org(addr) => pc = *addr,
            Item::Space(n) => {
                for _ in 0..*n {
                    emit(&mut words, &mut pc, 0);
                }
            }
            Item::Word(vals, line) => {
                for v in vals {
                    let w = match v {
                        Arg::Imm(i) => *i as u32,
                        Arg::Label(l) => *symbols.get(l).ok_or_else(|| AsmError {
                            line: *line,
                            message: format!("undefined label `{l}`"),
                        })?,
                        _ => {
                            return Err(AsmError {
                                line: *line,
                                message: ".word takes immediates or labels".into(),
                            })
                        }
                    };
                    emit(&mut words, &mut pc, w);
                    download_words += 1;
                }
            }
            Item::Instr {
                line,
                mnemonic,
                args,
            } => {
                let encoded =
                    encode_instr(mnemonic, args, pc, &symbols).map_err(|m| AsmError {
                        line: *line,
                        message: m,
                    })?;
                for w in encoded {
                    emit(&mut words, &mut pc, w);
                    download_words += 1;
                }
            }
        }
    }

    Ok(Program {
        base: 0,
        words,
        download_words,
        symbols,
    })
}

fn parse(source: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find(['#', ';']) {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(AsmError {
                    line,
                    message: format!("invalid label `{label}`"),
                });
            }
            items.push(Item::Label(label.to_string(), line));
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (head, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let head_lc = head.to_ascii_lowercase();
        match head_lc.as_str() {
            ".org" => {
                let addr = parse_imm(rest).ok_or_else(|| AsmError {
                    line,
                    message: format!("bad .org operand `{rest}`"),
                })?;
                if addr % 4 != 0 {
                    return Err(AsmError {
                        line,
                        message: ".org address must be word aligned".into(),
                    });
                }
                items.push(Item::Org(addr as u32));
            }
            ".word" => {
                let vals = rest
                    .split(',')
                    .map(|s| parse_arg(s.trim()))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| AsmError {
                        line,
                        message: format!("bad .word operands `{rest}`"),
                    })?;
                items.push(Item::Word(vals, line));
            }
            ".space" => {
                let bytes = parse_imm(rest).ok_or_else(|| AsmError {
                    line,
                    message: format!("bad .space operand `{rest}`"),
                })?;
                items.push(Item::Space(((bytes + 3) / 4) as usize));
            }
            _ if head_lc.starts_with('.') => {
                return Err(AsmError {
                    line,
                    message: format!("unknown directive `{head}`"),
                });
            }
            _ => {
                let args = if rest.is_empty() {
                    Vec::new()
                } else {
                    rest.split(',')
                        .map(|s| parse_arg(s.trim()))
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| AsmError {
                            line,
                            message: format!("bad operands `{rest}`"),
                        })?
                };
                items.push(Item::Instr {
                    line,
                    mnemonic: head_lc,
                    args,
                });
            }
        }
    }
    Ok(items)
}

fn parse_arg(s: &str) -> Option<Arg> {
    if s.is_empty() {
        return None;
    }
    if let Some(r) = Reg::parse(s) {
        return Some(Arg::Reg(r));
    }
    // offset(base)
    if let Some(open) = s.find('(') {
        let close = s.rfind(')')?;
        if close != s.len() - 1 {
            return None;
        }
        let off_str = s[..open].trim();
        let base = Reg::parse(s[open + 1..close].trim())?;
        let offset = if off_str.is_empty() {
            0
        } else {
            parse_imm(off_str)?
        };
        return Some(Arg::MemRef { offset, base });
    }
    if let Some(v) = parse_imm(s) {
        return Some(Arg::Imm(v));
    }
    if s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().unwrap().is_ascii_digit()
    {
        return Some(Arg::Label(s.to_string()));
    }
    None
}

fn parse_imm(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// How many instruction words the (possibly pseudo) instruction expands to.
fn instr_size_words(mnemonic: &str, args: &[Arg]) -> Result<usize, String> {
    match mnemonic {
        "li" => match args {
            [Arg::Reg(_), Arg::Imm(v)] => Ok(if fits_li_single(*v) { 1 } else { 2 }),
            _ => Err("li takes a register and an immediate".into()),
        },
        "la" => Ok(2),
        "nop" | "move" | "not" | "neg" | "b" | "beqz" | "bnez" => Ok(1),
        _ => {
            Op::from_mnemonic(mnemonic)
                .map(|_| 1)
                .ok_or_else(|| format!("unknown instruction `{mnemonic}`"))
        }
    }
}

fn fits_li_single(v: i64) -> bool {
    (-32768..=32767).contains(&v) || (0..=0xFFFF).contains(&v)
}

fn want_reg(a: &Arg) -> Result<Reg, String> {
    match a {
        Arg::Reg(r) => Ok(*r),
        other => Err(format!("expected register, got {other:?}")),
    }
}

fn want_imm_i16(a: &Arg) -> Result<u16, String> {
    match a {
        Arg::Imm(v) if (-32768..=65535).contains(v) => Ok(*v as u16),
        Arg::Imm(v) => Err(format!("immediate {v} out of 16-bit range")),
        other => Err(format!("expected immediate, got {other:?}")),
    }
}

fn branch_offset(target: u32, pc: u32) -> Result<u16, String> {
    let delta = (target as i64) - (pc as i64 + 4);
    if delta % 4 != 0 {
        return Err("branch target not word aligned".into());
    }
    let words = delta / 4;
    if !(-32768..=32767).contains(&words) {
        return Err(format!("branch target {words} words away, out of range"));
    }
    Ok(words as i16 as u16)
}

fn resolve_label(a: &Arg, symbols: &HashMap<String, u32>) -> Result<u32, String> {
    match a {
        Arg::Label(l) => symbols
            .get(l)
            .copied()
            .ok_or_else(|| format!("undefined label `{l}`")),
        Arg::Imm(v) => Ok(*v as u32),
        other => Err(format!("expected label or address, got {other:?}")),
    }
}

fn encode_instr(
    mnemonic: &str,
    args: &[Arg],
    pc: u32,
    symbols: &HashMap<String, u32>,
) -> Result<Vec<u32>, String> {
    // Pseudo-instructions first.
    match mnemonic {
        "nop" => return Ok(vec![crate::isa::NOP]),
        "li" => {
            let (rt, v) = match args {
                [Arg::Reg(r), Arg::Imm(v)] => (*r, *v),
                _ => return Err("li takes a register and an immediate".into()),
            };
            return Ok(encode_li(rt, v as u32, fits_li_single(v)));
        }
        "la" => {
            let (rt, addr) = match args {
                [Arg::Reg(r), rest] => (*r, resolve_label(rest, symbols)?),
                _ => return Err("la takes a register and a label".into()),
            };
            return Ok(encode_li(rt, addr, false));
        }
        "move" => {
            let (rd, rs) = match args {
                [Arg::Reg(d), Arg::Reg(s)] => (*d, *s),
                _ => return Err("move takes two registers".into()),
            };
            return Ok(vec![Instr::r3(Op::Addu, rd, rs, Reg::ZERO).encode()]);
        }
        "not" => {
            let (rd, rs) = match args {
                [Arg::Reg(d), Arg::Reg(s)] => (*d, *s),
                _ => return Err("not takes two registers".into()),
            };
            return Ok(vec![Instr::r3(Op::Nor, rd, rs, Reg::ZERO).encode()]);
        }
        "neg" => {
            let (rd, rs) = match args {
                [Arg::Reg(d), Arg::Reg(s)] => (*d, *s),
                _ => return Err("neg takes two registers".into()),
            };
            return Ok(vec![Instr::r3(Op::Subu, rd, Reg::ZERO, rs).encode()]);
        }
        "b" => {
            let target = match args {
                [a] => resolve_label(a, symbols)?,
                _ => return Err("b takes one target".into()),
            };
            let off = branch_offset(target, pc)?;
            return Ok(vec![Instr {
                op: Some(Op::Beq),
                imm: off,
                ..Default::default()
            }
            .encode()]);
        }
        "beqz" | "bnez" => {
            let (rs, target) = match args {
                [Arg::Reg(r), a] => (*r, resolve_label(a, symbols)?),
                _ => return Err(format!("{mnemonic} takes a register and a target")),
            };
            let off = branch_offset(target, pc)?;
            let op = if mnemonic == "beqz" { Op::Beq } else { Op::Bne };
            return Ok(vec![Instr {
                op: Some(op),
                rs,
                imm: off,
                ..Default::default()
            }
            .encode()]);
        }
        _ => {}
    }

    let op = Op::from_mnemonic(mnemonic).ok_or_else(|| format!("unknown instruction `{mnemonic}`"))?;
    let i = match (op.format(), args) {
        (Format::R3, [d, s, t]) => Instr::r3(op, want_reg(d)?, want_reg(s)?, want_reg(t)?),
        (Format::RShift, [d, t, Arg::Imm(sh)]) => {
            if !(0..=31).contains(sh) {
                return Err(format!("shift amount {sh} out of range"));
            }
            Instr::shift(op, want_reg(d)?, want_reg(t)?, *sh as u8)
        }
        // Variable shifts are written `op rd, rt, rs`.
        (Format::RShiftV, [d, t, s]) => Instr {
            op: Some(op),
            rd: want_reg(d)?,
            rt: want_reg(t)?,
            rs: want_reg(s)?,
            ..Default::default()
        },
        (Format::RJr, [s]) => Instr {
            op: Some(op),
            rs: want_reg(s)?,
            ..Default::default()
        },
        (Format::RJalr, [d, s]) => Instr {
            op: Some(op),
            rd: want_reg(d)?,
            rs: want_reg(s)?,
            ..Default::default()
        },
        (Format::RJalr, [s]) => Instr {
            op: Some(op),
            rd: Reg::RA,
            rs: want_reg(s)?,
            ..Default::default()
        },
        (Format::RMfHiLo, [d]) => Instr {
            op: Some(op),
            rd: want_reg(d)?,
            ..Default::default()
        },
        (Format::RMtHiLo, [s]) => Instr {
            op: Some(op),
            rs: want_reg(s)?,
            ..Default::default()
        },
        (Format::RMulDiv, [s, t]) => Instr {
            op: Some(op),
            rs: want_reg(s)?,
            rt: want_reg(t)?,
            ..Default::default()
        },
        (Format::ISigned | Format::IUnsigned, [t, s, imm]) => {
            Instr::imm(op, want_reg(t)?, want_reg(s)?, want_imm_i16(imm)?)
        }
        (Format::ILui, [t, imm]) => Instr::imm(op, want_reg(t)?, Reg::ZERO, want_imm_i16(imm)?),
        (Format::IBranch2, [s, t, target]) => {
            let off = branch_offset(resolve_label(target, symbols)?, pc)?;
            Instr {
                op: Some(op),
                rs: want_reg(s)?,
                rt: want_reg(t)?,
                imm: off,
                ..Default::default()
            }
        }
        (Format::IBranch1 | Format::IRegimm, [s, target]) => {
            let off = branch_offset(resolve_label(target, symbols)?, pc)?;
            Instr {
                op: Some(op),
                rs: want_reg(s)?,
                imm: off,
                ..Default::default()
            }
        }
        (Format::JAbs, [target]) => {
            let addr = resolve_label(target, symbols)?;
            Instr {
                op: Some(op),
                target: (addr >> 2) & 0x03FF_FFFF,
                ..Default::default()
            }
        }
        (Format::IMem, [t, Arg::MemRef { offset, base }]) => {
            if !(-32768..=32767).contains(offset) {
                return Err(format!("memory offset {offset} out of range"));
            }
            Instr::mem(op, want_reg(t)?, *base, *offset as i16)
        }
        (Format::IMem, [t, Arg::Imm(abs)]) => {
            // Absolute addressing off $zero.
            if !(0..=32767).contains(abs) {
                return Err(format!("absolute address {abs} out of range"));
            }
            Instr::mem(op, want_reg(t)?, Reg::ZERO, *abs as i16)
        }
        (f, a) => {
            return Err(format!(
                "wrong operands for `{mnemonic}` ({f:?} expects a different shape, got {} args)",
                a.len()
            ))
        }
    };
    Ok(vec![i.encode()])
}

fn encode_li(rt: Reg, value: u32, single: bool) -> Vec<u32> {
    if single {
        if value <= 0xFFFF {
            vec![Instr::imm(Op::Ori, rt, Reg::ZERO, value as u16).encode()]
        } else {
            // Negative 16-bit value: addiu sign-extends.
            vec![Instr::imm(Op::Addiu, rt, Reg::ZERO, value as u16).encode()]
        }
    } else {
        let hi = (value >> 16) as u16;
        let lo = (value & 0xFFFF) as u16;
        let mut out = vec![Instr::imm(Op::Lui, rt, Reg::ZERO, hi).encode()];
        if lo != 0 {
            out.push(Instr::imm(Op::Ori, rt, rt, lo).encode());
        } else {
            out.push(crate::isa::NOP);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program_assembles() {
        let p = assemble(
            r#"
            # a tiny program
            start:
                addiu $t0, $zero, 5
                addiu $t1, $zero, 7
                addu  $t2, $t0, $t1
                sw    $t2, 0x40($zero)
            loop:
                beq   $zero, $zero, loop
                nop
            "#,
        )
        .unwrap();
        assert_eq!(p.size_words(), 6);
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("loop"), Some(16));
        // beq $0,$0,loop at pc=16 -> offset -1
        assert_eq!(p.words[4], 0x1000_FFFF);
        assert_eq!(p.words[5], 0);
    }

    #[test]
    fn li_chooses_smallest_encoding() {
        let p = assemble("li $t0, 42").unwrap();
        assert_eq!(p.size_words(), 1);
        let p = assemble("li $t0, -3").unwrap();
        assert_eq!(p.size_words(), 1);
        assert_eq!(p.words[0] & 0xFFFF, 0xFFFD);
        let p = assemble("li $t0, 0x12345678").unwrap();
        assert_eq!(p.size_words(), 2);
        let p = assemble("li $t0, 0xFFFF").unwrap();
        assert_eq!(p.size_words(), 1); // ori
        let p = assemble("li $t0, 0x10000").unwrap();
        assert_eq!(p.size_words(), 2); // lui + nop (lo == 0)
    }

    #[test]
    fn la_resolves_forward_labels() {
        let p = assemble(
            r#"
                la $t0, data
                lw $t1, 0($t0)
            stop: b stop
                nop
            .org 0x100
            data: .word 0xCAFEBABE, 123, stop
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("data"), Some(0x100));
        assert_eq!(p.words[0x100 / 4], 0xCAFE_BABE);
        assert_eq!(p.words[0x100 / 4 + 1], 123);
        assert_eq!(p.words[0x100 / 4 + 2], p.symbol("stop").unwrap());
        // la = lui 0x0000 + ori 0x0100
        assert_eq!(p.words[0] & 0xFFFF, 0);
        assert_eq!(p.words[1] & 0xFFFF, 0x100);
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble(
            r#"
                lw $t0, 8($sp)
                lw $t1, ($sp)
                sb $t2, -4($gp)
                lw $t3, 0x20
            "#,
        )
        .unwrap();
        assert_eq!(p.words[0], 0x8FA8_0008);
        assert_eq!(p.words[1], 0x8FA9_0000);
        assert_eq!(p.words[3] & 0xFFFF, 0x20);
    }

    #[test]
    fn errors_reported_with_lines() {
        let e = assemble("addu $t0, $t1").unwrap_err();
        assert_eq!(e.line, 1);
        let e = assemble("\n\nbogus $t0").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
        let e = assemble("beq $t0, $t1, nowhere").unwrap_err();
        assert!(e.message.contains("undefined label"));
        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = assemble("sll $t0, $t1, 32").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = assemble("addiu $t0, $zero, 0x12345").unwrap_err();
        assert!(e.message.contains("16-bit"));
    }

    #[test]
    fn pseudo_expansions() {
        let p = assemble(
            r#"
                move $t0, $t1
                not  $t2, $t3
                neg  $t4, $t5
                beqz $t6, out
                bnez $t7, out
            out: jr $ra
            "#,
        )
        .unwrap();
        use crate::isa::Instr;
        let i = Instr::decode(p.words[0]);
        assert_eq!(i.op, Some(Op::Addu));
        assert_eq!(i.rt, Reg::ZERO);
        let i = Instr::decode(p.words[1]);
        assert_eq!(i.op, Some(Op::Nor));
        let i = Instr::decode(p.words[2]);
        assert_eq!(i.op, Some(Op::Subu));
        assert_eq!(i.rs, Reg::ZERO);
        let i = Instr::decode(p.words[3]);
        assert_eq!(i.op, Some(Op::Beq));
        let i = Instr::decode(p.words[4]);
        assert_eq!(i.op, Some(Op::Bne));
    }

    #[test]
    fn variable_shift_operand_order() {
        // srlv rd, rt, rs : value in rt shifted by rs.
        let p = assemble("srlv $t0, $t1, $t2").unwrap();
        let i = Instr::decode(p.words[0]);
        assert_eq!(i.op, Some(Op::Srlv));
        assert_eq!(i.rd, Reg(8));
        assert_eq!(i.rt, Reg(9));
        assert_eq!(i.rs, Reg(10));
    }

    #[test]
    fn space_and_org_layout() {
        let p = assemble(
            r#"
                nop
            .space 12
            tail: .word 7
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("tail"), Some(16));
        assert_eq!(p.words[4], 7);
    }

    #[test]
    fn jal_and_jalr_forms() {
        let p = assemble(
            r#"
                jal  func
                nop
                jalr $t9
                nop
                jalr $t0, $t9
            func: jr $ra
            "#,
        )
        .unwrap();
        let i = Instr::decode(p.words[0]);
        assert_eq!(i.op, Some(Op::Jal));
        assert_eq!(i.target << 2, p.symbol("func").unwrap());
        let i = Instr::decode(p.words[2]);
        assert_eq!(i.op, Some(Op::Jalr));
        assert_eq!(i.rd, Reg::RA, "one-operand jalr links to $ra");
        let i = Instr::decode(p.words[4]);
        assert_eq!(i.rd, Reg(8));
    }
}
