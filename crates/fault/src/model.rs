//! The single stuck-at fault model: sites, polarities, fault universes.

use netlist::{ComponentId, Net, Netlist, TOP_COMPONENT};

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// Signal permanently at logic 0.
    StuckAt0,
    /// Signal permanently at logic 1.
    StuckAt1,
}

impl Polarity {
    /// The opposite polarity.
    pub fn flip(self) -> Polarity {
        match self {
            Polarity::StuckAt0 => Polarity::StuckAt1,
            Polarity::StuckAt1 => Polarity::StuckAt0,
        }
    }

    /// Conventional short name (`sa0` / `sa1`).
    pub fn short(self) -> &'static str {
        match self {
            Polarity::StuckAt0 => "sa0",
            Polarity::StuckAt1 => "sa1",
        }
    }
}

/// A physical location a stuck-at fault can occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The stem (source) of a net: the driver output, a primary input, or a
    /// flip-flop Q output.
    Stem(Net),
    /// A gate input pin — a fanout *branch* of the net it reads. Distinct
    /// from the stem when the net has fanout greater than one.
    Pin {
        /// Index of the gate in [`Netlist::gates`].
        gate: u32,
        /// Input pin index (0..3).
        pin: u8,
    },
    /// A flip-flop's D input pin (a fanout branch into the state element).
    DffD(u32),
}

/// A single stuck-at fault: a site plus a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// Stuck-at 0 or 1.
    pub polarity: Polarity,
}

impl Fault {
    /// Human-readable description, e.g. `"n42 sa1"` or `"g17/pin0 sa0"`.
    pub fn describe(&self) -> String {
        match self.site {
            FaultSite::Stem(n) => format!("{n} {}", self.polarity.short()),
            FaultSite::Pin { gate, pin } => {
                format!("g{gate}/pin{pin} {}", self.polarity.short())
            }
            FaultSite::DffD(d) => format!("ff{d}/d {}", self.polarity.short()),
        }
    }
}

/// A set of faults with component attribution, as extracted from a netlist.
///
/// `faults[i]` belongs to component `component[i]`. After
/// [`FaultList::collapsed`], `weight[i]` counts how many uncollapsed
/// faults the representative stands for, so raw (uncollapsed) coverage can
/// still be reported the way commercial tools do.
#[derive(Debug, Clone)]
pub struct FaultList {
    /// The faults (representatives, after collapsing).
    pub faults: Vec<Fault>,
    /// Component each fault belongs to (parallel to `faults`).
    pub component: Vec<ComponentId>,
    /// Number of original faults each entry represents (all 1 before
    /// collapsing).
    pub weight: Vec<u32>,
    /// Total number of uncollapsed faults this list was derived from.
    pub total_uncollapsed: usize,
}

impl FaultList {
    /// Extract the full (uncollapsed) single stuck-at fault universe:
    /// both polarities on every net stem, every gate input pin, and every
    /// flip-flop D pin.
    ///
    /// Component attribution: a stem fault belongs to the component of the
    /// gate/flip-flop driving the net (primary-input stems belong to the
    /// top/glue component); pin faults belong to the reading gate's
    /// component.
    pub fn extract(netlist: &Netlist) -> FaultList {
        let mut stem_component = vec![TOP_COMPONENT; netlist.num_nets()];
        for (gi, g) in netlist.gates().iter().enumerate() {
            stem_component[g.output.index()] = netlist.gate_component(gi);
        }
        for (fi, ff) in netlist.dffs().iter().enumerate() {
            stem_component[ff.q.index()] = netlist.dff_component(fi);
        }

        let mut faults = Vec::new();
        let mut component = Vec::new();
        let mut push = |site: FaultSite, comp: ComponentId| {
            for polarity in [Polarity::StuckAt0, Polarity::StuckAt1] {
                faults.push(Fault { site, polarity });
                component.push(comp);
            }
        };

        // Stems: every driven net. (Iterate nets via drivers + ports to
        // keep deterministic order.)
        let mut has_stem = vec![false; netlist.num_nets()];
        for g in netlist.gates() {
            has_stem[g.output.index()] = true;
        }
        for ff in netlist.dffs() {
            has_stem[ff.q.index()] = true;
        }
        for (_, dir, nets) in netlist.ports() {
            if matches!(dir, netlist::PortDir::Input) {
                for &n in nets {
                    has_stem[n.index()] = true;
                }
            }
        }
        for i in 0..netlist.num_nets() {
            if has_stem[i] {
                let net = Net::from_index(i);
                push(FaultSite::Stem(net), stem_component[i]);
            }
        }
        for (gi, g) in netlist.gates().iter().enumerate() {
            for pin in 0..g.kind.arity() {
                push(
                    FaultSite::Pin {
                        gate: gi as u32,
                        pin: pin as u8,
                    },
                    netlist.gate_component(gi),
                );
            }
        }
        for fi in 0..netlist.dffs().len() {
            push(FaultSite::DffD(fi as u32), netlist.dff_component(fi));
        }

        let n = faults.len();
        FaultList {
            faults,
            component,
            weight: vec![1; n],
            total_uncollapsed: n,
        }
    }

    /// Apply structural equivalence collapsing; see [`crate::collapse`].
    pub fn collapsed(self, netlist: &Netlist) -> FaultList {
        crate::collapse::collapse(netlist, self)
    }

    /// Number of faults in the list.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Restrict to the faults of one component.
    pub fn for_component(&self, comp: ComponentId) -> FaultList {
        self.filter(|_, c| c == comp)
    }

    /// Keep only faults satisfying the predicate over `(fault, component)`.
    pub fn filter(&self, mut pred: impl FnMut(Fault, ComponentId) -> bool) -> FaultList {
        let mut out = FaultList {
            faults: Vec::new(),
            component: Vec::new(),
            weight: Vec::new(),
            total_uncollapsed: 0,
        };
        for i in 0..self.faults.len() {
            if pred(self.faults[i], self.component[i]) {
                out.faults.push(self.faults[i]);
                out.component.push(self.component[i]);
                out.weight.push(self.weight[i]);
                out.total_uncollapsed += self.weight[i] as usize;
            }
        }
        out
    }

    /// Contiguous sub-list `[lo, hi)` of this fault list, preserving
    /// order. This is the shard extraction used by the campaign job
    /// server: because a fault's detection depends only on the fault and
    /// the stimulus — never on which other faults share its batch — any
    /// tiling of `[0, len)` into slices grades exactly like the whole.
    pub fn slice(&self, lo: usize, hi: usize) -> FaultList {
        assert!(
            lo <= hi && hi <= self.faults.len(),
            "fault slice [{lo}, {hi}) out of bounds for {} faults",
            self.faults.len()
        );
        let weight = self.weight[lo..hi].to_vec();
        FaultList {
            faults: self.faults[lo..hi].to_vec(),
            component: self.component[lo..hi].to_vec(),
            total_uncollapsed: weight.iter().map(|&w| w as usize).sum(),
            weight,
        }
    }

    /// Deterministic stratified sample of roughly `target` faults,
    /// proportionally per component (at least one fault per non-empty
    /// component). Used to keep development-time fault simulations fast;
    /// full runs use the complete list.
    pub fn sample_stratified(&self, target: usize, seed: u64) -> FaultList {
        if target >= self.len() {
            return self.clone();
        }
        // Group fault indices by component.
        let max_comp = self
            .component
            .iter()
            .map(|c| c.index())
            .max()
            .unwrap_or(0);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_comp + 1];
        for (i, c) in self.component.iter().enumerate() {
            buckets[c.index()].push(i);
        }
        let mut picked = Vec::new();
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        for bucket in &mut buckets {
            if bucket.is_empty() {
                continue;
            }
            let want = ((bucket.len() * target + self.len() - 1) / self.len()).max(1);
            // Partial Fisher-Yates.
            let len = bucket.len();
            for k in 0..want.min(len) {
                let j = k + (next() as usize) % (len - k);
                bucket.swap(k, j);
                picked.push(bucket[k]);
            }
        }
        picked.sort_unstable();
        let mut out = FaultList {
            faults: Vec::new(),
            component: Vec::new(),
            weight: Vec::new(),
            total_uncollapsed: 0,
        };
        for i in picked {
            out.faults.push(self.faults[i]);
            out.component.push(self.component[i]);
            out.weight.push(self.weight[i]);
            out.total_uncollapsed += self.weight[i] as usize;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        b.begin_component("u");
        let x = b.and2(a, c);
        let q = b.dff(x, false);
        b.end_component();
        b.output("q", q);
        b.finish().unwrap()
    }

    #[test]
    fn universe_counts() {
        let nl = tiny();
        let fl = FaultList::extract(&nl);
        // Stems: a, b, x, q = 4 nets -> 8 faults.
        // Pins: and2 has 2 pins -> 4 faults. DffD -> 2 faults.
        assert_eq!(fl.len(), 14);
        assert_eq!(fl.total_uncollapsed, 14);
        assert!(fl.weight.iter().all(|&w| w == 1));
    }

    #[test]
    fn component_attribution() {
        let nl = tiny();
        let fl = FaultList::extract(&nl);
        let u = nl.component_by_name("u").unwrap();
        let ours = fl.for_component(u);
        // AND output stem, DFF q stem, 2 pins, DffD pin = 2+2+4+2 = 10.
        assert_eq!(ours.len(), 10);
    }

    #[test]
    fn stratified_sample_is_deterministic_and_sized() {
        let nl = tiny();
        let fl = FaultList::extract(&nl);
        let s1 = fl.sample_stratified(6, 42);
        let s2 = fl.sample_stratified(6, 42);
        assert_eq!(s1.faults, s2.faults);
        assert!(s1.len() >= 6 && s1.len() <= fl.len());
        let s3 = fl.sample_stratified(100, 42);
        assert_eq!(s3.len(), fl.len(), "oversampling returns everything");
    }

    #[test]
    fn filter_keeps_weights() {
        let nl = tiny();
        let mut fl = FaultList::extract(&nl);
        fl.weight[0] = 5;
        let kept = fl.filter(|f, _| f == fl.faults[0]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.total_uncollapsed, 5);
    }
}
