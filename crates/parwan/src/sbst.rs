//! Deterministic and pseudorandom self-test programs for the Parwan-class
//! core, plus the grading flow — the substrate for the paper's Section 1
//! cost-ratio comparison (deterministic \[7\]\[8\] vs LFSR-based \[6\]).

use fault::campaign::{self, CampaignHooks, CampaignResult};
use fault::engine::{EngineConfig, EngineKind};
use fault::model::FaultList;
use fault::sim::ParallelSim;
use fault::wide::WideSim;

use crate::core::ParwanCore;
use crate::isa::{Cond, ProgramBuilder};
use crate::model::ParwanModel;
use crate::testbench::{ParwanSelfTestBench, ParwanWideSelfTestBench};

/// Response region base.
pub const RESP: u16 = 0x200;

/// Operand table base.
pub const TAB: u16 = 0x300;

/// End-of-test mailbox: a store of 0xA5 here ends the test.
pub const MAILBOX: u16 = 0x1FF;

/// End marker value.
pub const END_MARKER: u8 = 0xA5;

/// A built Parwan self-test: machine code plus the size split the cost
/// comparison needs.
#[derive(Debug, Clone)]
pub struct ParwanSelfTest {
    /// Full memory image (code + data tables).
    pub image: Vec<u8>,
    /// Code bytes (downloaded program).
    pub code_bytes: usize,
    /// Test-data bytes (downloaded operand tables / seeds).
    pub data_bytes: usize,
}

fn end_test(p: &mut ProgramBuilder, marker_src: u16) {
    // LDA the marker constant and store it to the mailbox, then spin.
    p.lda(marker_src).sta(MAILBOX);
    let h = p.here();
    p.jmp(h);
}

/// The deterministic self-test: compact routines per component in the
/// methodology's style — accumulator march, adder carry pairs, logic
/// pairs, shifter walks, flag/branch checks — with every response stored
/// to memory.
pub fn deterministic_selftest() -> ParwanSelfTest {
    let mut p = ProgramBuilder::new();
    let mut tab: Vec<u8> = Vec::new();
    let tab_at = |tab: &mut Vec<u8>, v: u8| -> u16 {
        if let Some(i) = tab.iter().position(|&x| x == v) {
            return TAB + i as u16;
        }
        tab.push(v);
        TAB + (tab.len() - 1) as u16
    };
    let mut resp = RESP;

    // Accumulator march: load/complement/store walking patterns.
    for v in [0x00u8, 0xFF, 0xAA, 0x55, 0x0F, 0xF0, 0x01, 0x80] {
        let a = tab_at(&mut tab, v);
        p.lda(a).sta(resp);
        resp += 1;
        p.cma().sta(resp);
        resp += 1;
    }

    // Adder: carry-chain pairs (a + b, a - b for each).
    for (a, b) in [
        (0x00u8, 0x00u8),
        (0xFF, 0x01),
        (0xAA, 0x55),
        (0x55, 0xAA),
        (0x7F, 0x01),
        (0x80, 0x80),
        (0xFF, 0xFF),
        (0x0F, 0xF0),
        (0x33, 0xCC),
    ] {
        let aa = tab_at(&mut tab, a);
        let bb = tab_at(&mut tab, b);
        p.lda(aa).add(bb).sta(resp);
        resp += 1;
        p.lda(aa).sub(bb).sta(resp);
        resp += 1;
    }

    // Logic: per-bit exhaustive AND pairs.
    for (a, b) in [(0x00u8, 0x00u8), (0x00, 0xFF), (0xFF, 0x00), (0xFF, 0xFF), (0xAA, 0x55), (0xCC, 0xAA)] {
        let aa = tab_at(&mut tab, a);
        let bb = tab_at(&mut tab, b);
        p.lda(aa).and(bb).sta(resp);
        resp += 1;
    }

    // Shifter: walk a one and an alternating pattern through both
    // directions.
    for v in [0x01u8, 0x80, 0xAA, 0x55] {
        let a = tab_at(&mut tab, v);
        p.lda(a);
        for _ in 0..8 {
            p.asl().sta(resp);
            resp += 1;
        }
        p.lda(a);
        for _ in 0..8 {
            p.asr().sta(resp);
            resp += 1;
        }
    }

    // Flags through branches: each condition taken and not taken; the
    // observable is which store executes (and the fetch stream itself).
    // Z taken:
    let zero_a = tab_at(&mut tab, 0);
    let ff = tab_at(&mut tab, 0xFF);
    let one = tab_at(&mut tab, 1);
    for (setup, cond) in [(0u8, Cond::Z), (1, Cond::N), (2, Cond::C), (3, Cond::V)] {
        match setup {
            0 => {
                p.lda(zero_a);
            }
            1 => {
                p.lda(ff);
            }
            2 => {
                p.lda(ff).add(one);
            }
            _ => {
                p.lda(tab_at(&mut tab, 0x7F)).add(one);
            }
        }
        // Branch over a store: taken -> store skipped.
        let skip_to = p.here() + 2 + 4;
        p.bra(cond, skip_to & 0xFFF);
        p.sta(resp);
        p.nop().nop(); // pad so the target lands here
        resp += 1;
        // Inverted setup: condition clear -> store executes.
        p.cla();
        let skip_to = p.here() + 2 + 4;
        p.bra(cond, skip_to & 0xFFF);
        p.sta(resp);
        p.nop().nop();
        resp += 1;
        // CMC flips carry for extra C coverage.
        p.cmc();
    }

    let marker = tab_at(&mut tab, END_MARKER);
    end_test(&mut p, marker);
    let code_bytes = p.here() as usize;
    p.pad_to(TAB);
    for &v in &tab {
        p.byte(v);
    }
    ParwanSelfTest {
        image: p.build(),
        code_bytes,
        data_bytes: tab.len(),
    }
}

/// The pseudorandom (Chen & Dey-style) self-test: an 8-bit LFSR emulated
/// in software (XOR synthesized from ADD/AND/SUB — Parwan has no XOR)
/// expands a downloaded seed into `count` patterns, which are applied to
/// the accumulator/ALU/shifter with responses stored to memory.
pub fn lfsr_selftest(count: usize) -> ParwanSelfTest {
    assert!((2..=60).contains(&count), "pattern count out of range");
    let mut p = ProgramBuilder::new();
    // Memory layout: the unrolled code needs far more room than the
    // deterministic test, so its data lives high: responses at 0xA00,
    // expansion buffer at 0xC00, downloaded constants and state at 0xF00.
    let resp_base = 0xA00u16;
    let buf = 0xC00u16; // expansion buffer (on-chip memory cost)
    let tab = 0xF00u16;
    let seed_cell = tab; // downloaded seed (test data)
    let taps_cell = tab + 1; // downloaded taps constant
    let mask_cell = tab + 2;
    let marker_cell = tab + 3;
    let x_cell = 0xF10u16; // LFSR state
    let t_cell = 0xF11; // scratch: x & taps

    // x = seed
    p.lda(seed_cell).sta(x_cell);
    // Expansion loop, unrolled per pattern (Parwan has no indexed
    // addressing, so the buffer store is unrolled — faithful to how [6]'s
    // application routines look on an accumulator machine).
    for k in 0..count {
        // Keep each step's short branch away from a page boundary.
        if (p.here() & 0xFF) > 0xE0 {
            let next_page = (p.here() & 0xF00) + 0x100;
            p.pad_to(next_page);
        }
        // Galois step: lsb = x & 1 (captured in C by ASR), x >>= 1,
        // if lsb { x ^= taps }.
        p.lda(x_cell).asr();
        // Mask the replicated sign bit so the shift is logical.
        p.and(mask_cell); // 0x7F mask
        p.sta(x_cell);
        // BRA branches when the flag is SET: carry set falls through a
        // two-byte window into the xor block; carry clear jumps past it.
        let xor_block = p.here() + 4;
        let skip = xor_block + 16;
        p.bra(Cond::C, xor_block & 0xFFF);
        p.jmp(skip & 0xFFF);
        // xor block: x = x ^ taps = (x + taps) - 2*(x & taps)
        assert_eq!(p.here(), xor_block);
        p.lda(x_cell).and(taps_cell).sta(t_cell); // t = x & taps
        p.lda(x_cell).add(taps_cell).sub(t_cell).sub(t_cell).sta(x_cell);
        assert_eq!(p.here(), skip, "xor block size changed");
        // Store the pattern into the buffer (unrolled address).
        p.lda(x_cell).sta(buf + k as u16);
        let _ = k;
    }
    // Application: run every buffered pattern through ADD/AND/SUB/ASL
    // against its successor, storing responses (unrolled pairs).
    let mut resp = resp_base;
    for k in 0..count - 1 {
        let a = buf + k as u16;
        let b = buf + k as u16 + 1;
        p.lda(a).add(b).sta(resp);
        resp += 1;
        p.lda(a).and(b).sta(resp);
        resp += 1;
        p.lda(a).sub(b).asl().sta(resp);
        resp += 1;
    }

    end_test(&mut p, marker_cell);
    let code_bytes = p.here() as usize;
    assert!(code_bytes <= resp_base as usize, "code overruns the data map");
    p.pad_to(tab);
    p.byte(0xB7) // seed
        .byte(0xB8) // taps (x^8 + x^6 + x^5 + x^4 + 1 -> 0xB8)
        .byte(0x7F) // shift mask
        .byte(END_MARKER);
    ParwanSelfTest {
        image: p.build(),
        code_bytes,
        data_bytes: 4,
    }
}

/// Golden run length: cycles until the mailbox store.
///
/// # Panics
///
/// Panics if the program never stores the marker (broken generator).
pub fn golden_cycles(test: &ParwanSelfTest) -> u64 {
    let mut mem = vec![0u8; 4096];
    mem[..test.image.len()].copy_from_slice(&test.image);
    let mut cpu = ParwanModel::new();
    for c in 0..2_000_000u64 {
        let bc = cpu.cycle(&mut mem);
        if bc.we && bc.addr == MAILBOX && bc.wdata == END_MARKER {
            return c + 1;
        }
    }
    panic!("parwan self-test never reached its end marker");
}

/// Fault-simulate a self-test on an explicit engine configuration,
/// sharded over `threads` worker threads (0 = auto, see
/// [`campaign::default_threads`]). Results are bit-identical across
/// engines, lane widths, and thread counts.
pub fn grade_engine(
    core: &ParwanCore,
    test: &ParwanSelfTest,
    faults: &FaultList,
    threads: usize,
    engine: EngineConfig,
) -> CampaignResult {
    grade_hooks(core, test, faults, threads, engine, &CampaignHooks::none())
}

/// [`grade_engine`] with observability hooks: the tracer/progress/event
/// plumbing of [`fault::campaign::CampaignHooks`], and each worker's
/// bench shares the hooks' profiler so per-cycle phase times land in the
/// campaign profile. Detections are bit-identical with hooks on or off.
pub fn grade_hooks(
    core: &ParwanCore,
    test: &ParwanSelfTest,
    faults: &FaultList,
    threads: usize,
    engine: EngineConfig,
    hooks: &CampaignHooks,
) -> CampaignResult {
    let budget = golden_cycles(test) + 32;
    let [early, late] = core.segments();
    let segments = [early.to_vec(), late.to_vec()];
    match engine.kind {
        EngineKind::Interp => {
            let sim = ParallelSim::with_segments(core.netlist(), &segments);
            let factory = || {
                ParwanSelfTestBench::new(core, &test.image, budget)
                    .with_profiler(hooks.profiler.clone())
            };
            campaign::run_parallel_with(&sim, faults, &factory, threads, hooks)
        }
        EngineKind::Compiled => {
            let kernel = {
                let _compile = hooks.profiler.scope(obs::ProfilePhase::Compile);
                fault::kernel::compile_cached(core.netlist(), &segments)
            };
            let proto = WideSim::new(kernel, engine.lane_words, engine.gating);
            let factory = || {
                ParwanWideSelfTestBench::new(core, &test.image, budget, engine.lane_words)
                    .with_profiler(hooks.profiler.clone())
            };
            campaign::run_parallel_wide_with(&proto, faults, &factory, threads, hooks)
        }
    }
}

/// Fault-simulate a self-test over the (collapsed) fault list on the
/// environment-selected engine (`SBST_ENGINE`/`SBST_LANES`; default
/// compiled, 256 lanes), sharded over `threads` worker threads.
pub fn grade_threads(
    core: &ParwanCore,
    test: &ParwanSelfTest,
    faults: &FaultList,
    threads: usize,
) -> CampaignResult {
    grade_engine(core, test, faults, threads, EngineConfig::from_env())
}

/// [`grade_threads`] with auto thread count.
pub fn grade(core: &ParwanCore, test: &ParwanSelfTest, faults: &FaultList) -> CampaignResult {
    grade_threads(core, test, faults, 0)
}

/// Replay one fault of a Parwan self-test with waveform capture: lane 0
/// is the fault-free core, lane 1 the faulty one, through the same
/// [`ParwanSelfTestBench`] [`grade_threads`] uses, so the verdict (and
/// detection cycle) matches the campaign bit for bit. Probe specs follow
/// [`netlist::wave::Probe::from_spec`] (component names or port globs;
/// empty = full probe).
pub fn capture_fault_wave(
    core: &ParwanCore,
    test: &ParwanSelfTest,
    f: fault::Fault,
    opts: &fault::wave::WaveOptions,
) -> Result<fault::wave::CapturedWave, String> {
    let probe = netlist::wave::Probe::from_spec(core.netlist(), &opts.probe)?;
    let budget = golden_cycles(test) + 32;
    let [early, late] = core.segments();
    let mut sim =
        ParallelSim::with_segments(core.netlist(), &[early.to_vec(), late.to_vec()]);
    let mut tb = ParwanSelfTestBench::new(core, &test.image, budget);
    Ok(fault::wave::capture_fault(&mut sim, &mut tb, probe, f, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_selftest_terminates() {
        let t = deterministic_selftest();
        let cycles = golden_cycles(&t);
        assert!(cycles > 100 && cycles < 5000, "cycles = {cycles}");
        assert!(t.code_bytes < 700, "code {} bytes", t.code_bytes);
        assert!(t.data_bytes < 40);
    }

    #[test]
    fn lfsr_selftest_terminates_and_is_heavy() {
        let t = lfsr_selftest(40);
        let cycles = golden_cycles(&t);
        let det = golden_cycles(&deterministic_selftest());
        assert!(
            cycles > 2 * det,
            "pseudorandom should cost much more: {cycles} vs {det}"
        );
    }

    /// End-to-end waveform path on a real (small) CPU: the captured
    /// trigger must equal the campaign's detection cycle, the diff scope
    /// must actually show corruption, and the VCD must be
    /// byte-deterministic across captures.
    #[test]
    fn fault_wave_capture_matches_campaign_detection() {
        let core = ParwanCore::build();
        let faults = FaultList::extract(core.netlist()).collapsed(core.netlist());
        let test = deterministic_selftest();
        // Grade just the first batch to find a detected fault cheaply.
        let head = FaultList {
            faults: faults.faults[..63].to_vec(),
            component: faults.component[..63].to_vec(),
            weight: faults.weight[..63].to_vec(),
            total_uncollapsed: 63,
        };
        let res = grade(&core, &test, &head);
        let (idx, det_cycle) = res
            .detections
            .iter()
            .enumerate()
            .find_map(|(i, d)| match d {
                fault::campaign::Detection::DetectedAt(c) => Some((i, *c)),
                _ => None,
            })
            .expect("first batch should detect something");
        let f = head.faults[idx];

        let opts = fault::wave::WaveOptions::default();
        let wave = capture_fault_wave(&core, &test, f, &opts).unwrap();
        assert_eq!(wave.trigger, Some(det_cycle), "wave trigger != campaign detection");
        let corrupt = wave.corrupt_cycles();
        assert!(!corrupt.is_empty(), "no corruption in diff scope");
        assert!(*corrupt.first().unwrap() <= det_cycle);

        let render = |w: &fault::wave::CapturedWave| {
            let mut buf = Vec::new();
            w.write_vcd(&mut buf, &f.describe()).unwrap();
            buf
        };
        let again = capture_fault_wave(&core, &test, f, &opts).unwrap();
        assert_eq!(render(&wave), render(&again), "capture is not deterministic");

        // Probe selection by port glob narrows the var set.
        let narrow = fault::wave::WaveOptions {
            probe: vec!["mem_*".into()],
            ..fault::wave::WaveOptions::default()
        };
        let w2 = capture_fault_wave(&core, &test, f, &narrow).unwrap();
        assert!(w2.probe.len() < wave.probe.len());
        assert!(capture_fault_wave(
            &core,
            &test,
            f,
            &fault::wave::WaveOptions { probe: vec!["nope".into()], ..Default::default() }
        )
        .is_err());
    }

    /// The full self-test grading flow must produce identical detection
    /// sets on both engines (interp 64 lanes vs compiled 128 lanes,
    /// serial and 4 threads) — the processor-level bit-identical check.
    #[test]
    fn grade_engine_matches_across_engines_and_threads() {
        let core = ParwanCore::build();
        let faults = FaultList::extract(core.netlist()).collapsed(core.netlist());
        let test = deterministic_selftest();
        let reference = grade_engine(&core, &test, &faults, 1, EngineConfig::interp());
        for threads in [1usize, 4] {
            for lanes in [64usize, 128] {
                let res = grade_engine(
                    &core,
                    &test,
                    &faults,
                    threads,
                    EngineConfig::compiled(lanes),
                );
                assert_eq!(
                    res.detections, reference.detections,
                    "compiled {lanes} lanes @ {threads} threads diverged from interp"
                );
            }
        }
    }

    #[test]
    fn deterministic_coverage_beats_lfsr_per_cycle() {
        let core = ParwanCore::build();
        let faults = FaultList::extract(core.netlist()).collapsed(core.netlist());
        let det = deterministic_selftest();
        let det_res = grade(&core, &det, &faults);
        let det_cov = det_res.coverage();
        assert!(det_cov > 0.80, "deterministic coverage {det_cov}");
        let pr = lfsr_selftest(40);
        let pr_res = grade(&core, &pr, &faults);
        // The pseudorandom test must not dominate: comparable-or-lower
        // coverage at far higher cycle cost (the paper's claim).
        assert!(
            pr_res.coverage() <= det_cov + 0.03,
            "pseudorandom {} vs deterministic {det_cov}",
            pr_res.coverage()
        );
    }
}
