//! Per-component coverage reporting — the machinery behind the paper's
//! Table 5 ("fault coverage on Plasma/MIPS with successive phase test
//! development") — plus coverage-over-time curves sampled from the
//! detection records.

use netlist::Netlist;

use crate::campaign::{CampaignResult, Detection};

/// One Table 5 row: a component's coverage and its *missed overall fault
/// coverage* (MOFC) — the share of the whole processor's faults that
/// remain undetected inside this component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentCoverage {
    /// Component name.
    pub name: String,
    /// Weighted faults attributed to the component.
    pub total: u64,
    /// Weighted faults detected.
    pub detected: u64,
    /// Fault coverage within the component, percent.
    pub coverage_pct: f64,
    /// Percentage of the processor-wide fault universe missed in this
    /// component (the paper's MOFC column).
    pub mofc_pct: f64,
}

/// Full coverage report: per-component rows plus the overall line.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Rows in netlist component order.
    pub components: Vec<ComponentCoverage>,
    /// Overall weighted coverage, percent.
    pub overall_pct: f64,
    /// Total weighted faults.
    pub total_faults: u64,
    /// Total weighted detected faults.
    pub total_detected: u64,
}

impl CoverageReport {
    /// Build the report from a campaign result.
    pub fn from_campaign(netlist: &Netlist, result: &CampaignResult) -> CoverageReport {
        let n = netlist.component_names().len();
        let mut total = vec![0u64; n];
        let mut detected = vec![0u64; n];
        for i in 0..result.faults.len() {
            let c = result.faults.component[i].index();
            let w = result.faults.weight[i] as u64;
            total[c] += w;
            if result.detections[i].is_detected() {
                detected[c] += w;
            }
        }
        let grand_total: u64 = total.iter().sum();
        let grand_detected: u64 = detected.iter().sum();
        let components = (0..n)
            .map(|c| {
                let cov = if total[c] == 0 {
                    100.0
                } else {
                    100.0 * detected[c] as f64 / total[c] as f64
                };
                let mofc = if grand_total == 0 {
                    0.0
                } else {
                    100.0 * (total[c] - detected[c]) as f64 / grand_total as f64
                };
                ComponentCoverage {
                    name: netlist.component_names()[c].clone(),
                    total: total[c],
                    detected: detected[c],
                    coverage_pct: cov,
                    mofc_pct: mofc,
                }
            })
            .collect();
        CoverageReport {
            components,
            overall_pct: if grand_total == 0 {
                100.0
            } else {
                100.0 * grand_detected as f64 / grand_total as f64
            },
            total_faults: grand_total,
            total_detected: grand_detected,
        }
    }

    /// Row for a named component, if present.
    pub fn component(&self, name: &str) -> Option<&ComponentCoverage> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Render as an aligned text table (component, FC%, MOFC%).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<18} {:>8} {:>9} {:>8} {:>8}\n",
            "Component", "Faults", "Detected", "FC %", "MOFC %"
        ));
        for c in &self.components {
            s.push_str(&format!(
                "{:<18} {:>8} {:>9} {:>8.2} {:>8.2}\n",
                c.name, c.total, c.detected, c.coverage_pct, c.mofc_pct
            ));
        }
        s.push_str(&format!(
            "{:<18} {:>8} {:>9} {:>8.2} {:>8.2}\n",
            "TOTAL",
            self.total_faults,
            self.total_detected,
            self.overall_pct,
            100.0 - self.overall_pct
        ));
        s
    }
}

/// Per-component coverage sampled at a fixed cycle stride — the
/// "coverage evolving over the test program" curve the paper's per-phase
/// tables summarize at a single endpoint.
///
/// Built purely from the recorded first-detection cycles, so it costs
/// nothing during simulation: a fault counts as detected at sample cycle
/// `t` iff its `DetectedAt` cycle is ≤ `t`.
#[derive(Debug, Clone)]
pub struct CoverageTimeline {
    /// Sample stride in cycles.
    pub stride: u64,
    /// Sample points (ascending; always ends at the last cycle any
    /// detection occurred, rounded up to a stride multiple).
    pub cycles: Vec<u64>,
    /// Component names, in netlist order.
    pub components: Vec<String>,
    /// `rows[s][c]` = weighted coverage percent of component `c` at
    /// sample `s`.
    pub rows: Vec<Vec<f64>>,
    /// Overall weighted coverage percent at each sample.
    pub overall: Vec<f64>,
}

impl CoverageTimeline {
    /// Sample the campaign's detection records every `stride` cycles
    /// (`stride` ≥ 1; the final sample covers the last detection).
    pub fn from_campaign(
        netlist: &Netlist,
        result: &CampaignResult,
        stride: u64,
    ) -> CoverageTimeline {
        let stride = stride.max(1);
        let n = netlist.component_names().len();
        let mut total = vec![0u64; n];
        let mut grand_total = 0u64;
        // (cycle, component, weight) per detected fault, sorted by cycle.
        let mut events: Vec<(u64, usize, u64)> = Vec::new();
        for i in 0..result.faults.len() {
            let c = result.faults.component[i].index();
            let w = result.faults.weight[i] as u64;
            total[c] += w;
            grand_total += w;
            if let Detection::DetectedAt(cycle) = result.detections[i] {
                events.push((cycle, c, w));
            }
        }
        events.sort_unstable();
        let last_cycle = events.last().map(|e| e.0).unwrap_or(0);
        let samples = last_cycle / stride + 1;
        let mut cycles = Vec::with_capacity(samples as usize + 1);
        let mut rows = Vec::with_capacity(samples as usize + 1);
        let mut overall = Vec::with_capacity(samples as usize + 1);
        let mut detected = vec![0u64; n];
        let mut grand_detected = 0u64;
        let mut next_event = 0usize;
        for s in 0..=samples {
            let t = s * stride;
            while next_event < events.len() && events[next_event].0 <= t {
                let (_, c, w) = events[next_event];
                detected[c] += w;
                grand_detected += w;
                next_event += 1;
            }
            cycles.push(t);
            rows.push(
                (0..n)
                    .map(|c| {
                        if total[c] == 0 {
                            100.0
                        } else {
                            100.0 * detected[c] as f64 / total[c] as f64
                        }
                    })
                    .collect(),
            );
            overall.push(if grand_total == 0 {
                100.0
            } else {
                100.0 * grand_detected as f64 / grand_total as f64
            });
        }
        CoverageTimeline {
            stride,
            cycles,
            components: netlist.component_names().to_vec(),
            rows,
            overall,
        }
    }

    /// Render as an aligned text table: one row per sample cycle, one
    /// column per component plus the overall line.
    pub fn to_table(&self) -> String {
        let mut s = format!("{:>9}", "cycle");
        for name in &self.components {
            s.push_str(&format!(" {:>8}", truncate(name, 8)));
        }
        s.push_str(&format!(" {:>8}\n", "OVERALL"));
        for (k, &t) in self.cycles.iter().enumerate() {
            s.push_str(&format!("{t:>9}"));
            for c in 0..self.components.len() {
                s.push_str(&format!(" {:>8.2}", self.rows[k][c]));
            }
            s.push_str(&format!(" {:>8.2}\n", self.overall[k]));
        }
        s
    }
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_vectors;
    use crate::model::FaultList;
    use netlist::NetlistBuilder;

    #[test]
    fn report_attributes_by_component() {
        let mut b = NetlistBuilder::new("two");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        b.begin_component("xorpart");
        let x = b.xor_word(&a, &c);
        b.end_component();
        b.begin_component("deadpart");
        // An AND chain whose output is unobservable (not a port):
        let dead = b.and_word(&a, &c);
        let _sink = b.and_tree(&dead);
        b.end_component();
        b.outputs("x", &x);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let vectors: Vec<Vec<(&str, u64)>> = (0..256u64)
            .map(|v| vec![("a", v & 0xF), ("b", (v >> 4) & 0xF)])
            .collect();
        let res = run_vectors(&nl, &faults, &vectors);
        let report = CoverageReport::from_campaign(&nl, &res);
        let xor = report.component("xorpart").unwrap();
        let dead = report.component("deadpart").unwrap();
        assert!(xor.coverage_pct > 99.0, "xor {}", xor.coverage_pct);
        assert_eq!(dead.detected, 0, "dead logic must stay undetected");
        assert!(dead.mofc_pct > 0.0);
        // MOFC percentages plus overall coverage must account for all
        // faults.
        let mofc_sum: f64 = report.components.iter().map(|c| c.mofc_pct).sum();
        assert!((mofc_sum - (100.0 - report.overall_pct)).abs() < 1e-9);
        let table = report.to_table();
        assert!(table.contains("xorpart") && table.contains("TOTAL"));
    }

    /// A two-component sequential design whose second component only
    /// becomes observable after a few cycles, so the timeline actually
    /// has structure.
    fn staged_netlist() -> netlist::Netlist {
        let mut b = NetlistBuilder::new("staged");
        let a = b.inputs("a", 8);
        let c = b.inputs("b", 8);
        b.begin_component("fast");
        let x = b.xor_word(&a, &c);
        b.end_component();
        b.begin_component("slow");
        let q1 = b.dff_word(&x, 0);
        let q2 = b.dff_word(&q1, 0);
        let y = b.and_word(&q2, &a);
        b.end_component();
        b.outputs("x", &x);
        b.outputs("y", &y);
        b.finish().unwrap()
    }

    fn staged_vectors() -> Vec<Vec<(&'static str, u64)>> {
        (0..24u64)
            .map(|v| vec![("a", (v * 37) & 0xFF), ("b", (v * 101 + 13) & 0xFF)])
            .collect()
    }

    #[test]
    fn timeline_is_monotone_and_converges_to_report() {
        let nl = staged_netlist();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let res = run_vectors(&nl, &faults, &staged_vectors());
        let report = CoverageReport::from_campaign(&nl, &res);
        let tl = CoverageTimeline::from_campaign(&nl, &res, 2);
        assert_eq!(tl.cycles.len(), tl.rows.len());
        assert_eq!(tl.cycles.len(), tl.overall.len());
        // Monotone non-decreasing everywhere.
        for s in 1..tl.cycles.len() {
            assert!(tl.overall[s] >= tl.overall[s - 1]);
            for c in 0..tl.components.len() {
                assert!(tl.rows[s][c] >= tl.rows[s - 1][c]);
            }
        }
        // The last sample equals the end-of-run report.
        let last = tl.rows.last().unwrap();
        assert!((tl.overall.last().unwrap() - report.overall_pct).abs() < 1e-9);
        for (c, comp) in report.components.iter().enumerate() {
            assert!(
                (last[c] - comp.coverage_pct).abs() < 1e-9,
                "{}: timeline {} vs report {}",
                comp.name,
                last[c],
                comp.coverage_pct
            );
        }
        // Sequential detections exist, so coverage must actually grow.
        assert!(tl.overall[0] < *tl.overall.last().unwrap());
        let t = tl.to_table();
        assert!(t.contains("OVERALL") && t.contains("cycle"), "{t}");
    }

    /// Shard the fault list three ways, grade each shard independently,
    /// and check the per-component counts of the shard reports sum to
    /// the full-list report — the invariant campaign sharding (and any
    /// future distributed runner) rests on.
    #[test]
    fn sharded_campaigns_sum_to_full_report() {
        let nl = staged_netlist();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let vectors = staged_vectors();
        let full = CoverageReport::from_campaign(&nl, &run_vectors(&nl, &faults, &vectors));
        let mut sum_total = vec![0u64; full.components.len()];
        let mut sum_detected = vec![0u64; full.components.len()];
        for s in 0..3usize {
            let mut i = 0usize;
            let shard = faults.filter(|_, _| {
                let k = i;
                i += 1;
                k % 3 == s
            });
            let rep = CoverageReport::from_campaign(&nl, &run_vectors(&nl, &shard, &vectors));
            for (c, comp) in rep.components.iter().enumerate() {
                sum_total[c] += comp.total;
                sum_detected[c] += comp.detected;
            }
        }
        for (c, comp) in full.components.iter().enumerate() {
            assert_eq!(sum_total[c], comp.total, "{}: totals drifted", comp.name);
            assert_eq!(
                sum_detected[c], comp.detected,
                "{}: detections drifted across shards",
                comp.name
            );
        }
    }

    /// `CampaignResult::merge` must commute with per-component coverage
    /// reporting, whether the merged results came from serial or
    /// multi-threaded runs.
    #[test]
    fn merge_report_round_trip_serial_vs_parallel() {
        use crate::campaign::{run_parallel, VectorBench};
        use crate::sim::ParallelSim;
        let nl = staged_netlist();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let v1 = staged_vectors();
        let v2: Vec<Vec<(&str, u64)>> = vec![
            vec![("a", 0xFF), ("b", 0x00)],
            vec![("a", 0x0F), ("b", 0xF0)],
            vec![("a", 0x55), ("b", 0xAA)],
            vec![("a", 0x00), ("b", 0x00)],
        ];
        let serial_1 = run_vectors(&nl, &faults, &v1);
        let serial_2 = run_vectors(&nl, &faults, &v2);
        let serial_merged = serial_1.merge(&serial_2);
        let proto = ParallelSim::new(&nl);
        let par_1 = run_parallel(&proto, &faults, &|| VectorBench::new(&nl, &v1), 3);
        let par_2 = run_parallel(&proto, &faults, &|| VectorBench::new(&nl, &v2), 2);
        let par_merged = par_1.merge(&par_2);
        assert_eq!(par_merged.detections, serial_merged.detections);
        assert_eq!(par_merged.stats.latency, serial_merged.stats.latency);
        let rs = CoverageReport::from_campaign(&nl, &serial_merged);
        let rp = CoverageReport::from_campaign(&nl, &par_merged);
        assert_eq!(rs.total_faults, rp.total_faults);
        assert_eq!(rs.total_detected, rp.total_detected);
        for (a, b) in rs.components.iter().zip(&rp.components) {
            assert_eq!(a, b, "merged component rows differ");
        }
        // Merge must never lose detections relative to either input.
        assert!(rs.total_detected >= CoverageReport::from_campaign(&nl, &serial_1).total_detected);
        assert!(rs.total_detected >= CoverageReport::from_campaign(&nl, &serial_2).total_detected);
    }
}
