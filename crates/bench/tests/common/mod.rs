//! Shared plumbing for the job-server integration suites: boot the
//! `server` binary, scrape its port off stderr, and talk HTTP to it
//! over real sockets via `bench::client`.
#![allow(dead_code)] // each suite uses a different subset of helpers

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde_json::Value;

/// A running `server` coordinator process, killed on drop.
pub struct ServerProc {
    child: Child,
    /// Base URL, e.g. `http://127.0.0.1:41234`.
    pub base: String,
    /// The netlist fingerprint the server announced.
    pub fingerprint: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Boot `server` (the coordinator) on an ephemeral port with the given
/// extra arguments, wait for the stderr announcement, and return the
/// handle. Panics if the server does not come up within 30 s.
pub fn spawn_server(extra: &[&str]) -> ServerProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_server"));
    cmd.args(["--port", "0"]).args(extra);
    cmd.stdout(Stdio::null()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn server binary");
    let stderr = child.stderr.take().expect("server stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read server stderr");
        if n == 0 || Instant::now() > deadline {
            let _ = child.kill();
            panic!("server exited or timed out before announcing its port");
        }
        if let Some(rest) = line.split("http://").nth(1) {
            let addr = rest.split('/').next().unwrap_or("").trim().to_string();
            let fingerprint = line
                .split("netlist ")
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
                .unwrap_or("")
                .to_string();
            // Keep draining stderr in the background so the server never
            // blocks on a full pipe.
            std::thread::spawn(move || {
                let mut sink = String::new();
                while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                    sink.clear();
                }
            });
            return ServerProc {
                child,
                base: format!("http://{addr}"),
                fingerprint,
            };
        }
    }
}

/// Build a job-spec document for this server with sensible test-sized
/// defaults; callers override fields as needed.
pub fn spec(server: &ServerProc, id: &str) -> Value {
    serde_json::json!({
        "id": id.to_string(),
        "netlist": server.fingerprint.clone(),
        "sample": 200u64,
        "engine": "interp",
        "shards": 2u64,
    })
}

/// Fetch the `/json` metric snapshot.
pub fn metrics(server: &ServerProc) -> Value {
    let (status, body) = bench::client::get(&server.base, "/json").expect("GET /json");
    assert_eq!(status, 200, "GET /json → {status}");
    serde_json::from_str(&body).expect("parse metric snapshot")
}

/// Value of the first metric named `name` in a `/json` snapshot, as u64
/// (counters are u64; gauges are truncated).
pub fn metric_value(snapshot: &Value, name: &str) -> Option<u64> {
    snapshot["metrics"]
        .as_array()?
        .iter()
        .find(|m| m["name"].as_str() == Some(name))
        .and_then(|m| m["value"].as_u64().or_else(|| m["value"].as_f64().map(|f| f as u64)))
}

/// Submit, wait for completion, and fetch the merged result document.
pub fn run_job(server: &ServerProc, doc: &Value) -> Value {
    let ack = bench::client::submit_job(&server.base, doc)
        .unwrap_or_else(|(s, e)| panic!("submit rejected ({s}): {e}"));
    let id = ack["id"].as_str().expect("ack id").to_string();
    let status = bench::client::wait_job(&server.base, &id, Duration::from_secs(120))
        .expect("job finishes");
    assert_eq!(status["state"].as_str(), Some("done"), "job status: {status:?}");
    bench::client::fetch_result(&server.base, &id).expect("fetch result")
}
