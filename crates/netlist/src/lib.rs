//! Gate-level netlist infrastructure for the SBST (software-based self-test)
//! reproduction.
//!
//! This crate is the bottom substrate of the workspace: it provides
//!
//! * a compact gate-level intermediate representation ([`Netlist`], [`Gate`],
//!   [`Net`]) with hierarchical *component* tagging (the paper's RT-level
//!   components: register file, ALU, shifter, ...),
//! * a [`NetlistBuilder`] with word-level helpers for describing structural
//!   logic the way a synthesis tool would emit it,
//! * a library of structural generators ([`synth`]) for the datapath blocks
//!   every processor in the paper is made of (adders, barrel shifters,
//!   multipliers, register files, decoders, muxes) in two *technology
//!   styles*, used to reproduce the paper's re-synthesis experiment,
//! * a scalar (fault-free) logic [`sim::Simulator`] used for functional
//!   verification of generated netlists against behavioural models,
//! * NAND2-equivalent gate costing ([`GateKind::nand2_cost`]) matching the
//!   paper's "a 2-input NAND gate is the gate count unit" convention
//!   (Table 3).
//!
//! # Example
//!
//! Build a 4-bit ripple-carry adder and simulate it:
//!
//! ```
//! use netlist::{NetlistBuilder, synth};
//! use netlist::sim::Simulator;
//!
//! let mut b = NetlistBuilder::new("adder4");
//! let a = b.inputs("a", 4);
//! let c = b.inputs("b", 4);
//! let zero = b.zero();
//! let sum = synth::add_ripple(&mut b, &a, &c, zero).sum;
//! b.outputs("sum", &sum);
//! let nl = b.finish().unwrap();
//!
//! let mut sim = Simulator::new(&nl);
//! sim.set_input_word(&nl, "a", 7);
//! sim.set_input_word(&nl, "b", 5);
//! sim.eval(&nl);
//! assert_eq!(sim.output_word(&nl, "sum"), 12);
//! ```

#![warn(missing_docs)]

mod builder;
mod gate;
mod netlist;

pub mod dot;
pub mod opt;
pub mod sim;
pub mod stats;
pub mod synth;
pub mod verilog;
pub mod wave;

pub use builder::{NetlistBuilder, Word};
pub use gate::{Gate, GateKind, NO_NET};
pub use netlist::{
    ComponentId, ComponentStats, Dff, Net, Netlist, NetlistError, PortDir, TOP_COMPONENT,
};
