//! Table 5 regeneration cost: the fault-simulation campaign of the
//! Phase A program over a stratified fault sample. Prints the sampled
//! coverage row alongside the timing.

use criterion::{criterion_group, criterion_main, Criterion};

use plasma::{PlasmaConfig, PlasmaCore};
use sbst::flow::{self, FlowOptions};
use sbst::phases::{build_program, Phase};

fn bench_table5(c: &mut Criterion) {
    let core = PlasmaCore::build(PlasmaConfig::default());
    let opts = FlowOptions {
        fault_sample: Some(800),
        ..Default::default()
    };
    let faults = flow::fault_list(&core, &opts);
    let st = build_program(Phase::A).unwrap();
    let golden = flow::golden_cycles(&st);

    // Print the sampled headline once.
    let res = flow::run_campaign(&core, &st, &faults, golden + 64);
    println!(
        "[table5] Phase A, {} sampled faults: {:.2}% coverage",
        faults.len(),
        100.0 * res.coverage()
    );

    c.bench_function("table5_phase_a_800_faults", |b| {
        b.iter(|| flow::run_campaign(&core, &st, &faults, golden + 64))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table5
}
criterion_main!(benches);
