//! A dependency-free VCD (Value Change Dump, IEEE 1364 §18) writer.
//!
//! This is the serialization half of the waveform-observability stack: it
//! knows nothing about netlists or simulators. Callers declare a set of
//! variables up front — each a `(scope path, name, width ≤ 64)` triple —
//! and then feed one `&[u64]` sample per timestep. The writer handles:
//!
//! * hierarchical `$scope module … $upscope` blocks derived from the
//!   declaration order of the variables (vars sharing a scope-path prefix
//!   share the scope tree),
//! * identifier-code allocation over the printable-ASCII base-94 alphabet
//!   (`!` … `~`, multi-character past 94 vars),
//! * change-only emission: a variable is re-emitted under a `#t`
//!   timestamp only when its (width-masked) value differs from the
//!   previous sample; the first sample is a full `$dumpvars` block.
//!
//! The output is **byte-deterministic**: no `$date`, no wall-clock, no
//! hash-map iteration — the same declarations and samples always produce
//! the same bytes. This is what lets the differential-dump tests assert
//! byte-identical VCDs across `--threads 1/4`, and what the golden file
//! in `tests/golden/wave.vcd` pins.

use std::io::{self, Write};

/// A declared VCD variable: where it lives, what it is called, how wide.
#[derive(Debug, Clone)]
pub struct VcdVar {
    /// Scope path, outermost first (e.g. `["dut", "bus"]`). May be empty,
    /// in which case the var sits directly under the writer's top scope.
    pub scope: Vec<String>,
    /// Variable name as shown in the wave viewer.
    pub name: String,
    /// Width in bits, `1..=64`. Width 1 emits scalar changes (`0!`),
    /// wider vars emit binary vectors (`b1010 !`).
    pub width: u32,
}

/// An ordered set of variable declarations for one VCD file.
///
/// Declaration order is significant: it fixes identifier codes, the
/// scope-tree layout, and the order of values in every
/// [`VcdWriter::sample`] slice.
#[derive(Debug, Clone, Default)]
pub struct VcdSpec {
    vars: Vec<VcdVar>,
}

impl VcdSpec {
    /// An empty spec.
    pub fn new() -> VcdSpec {
        VcdSpec::default()
    }

    /// Declare a variable; returns its index (its slot in every sample
    /// slice).
    ///
    /// # Panics
    /// If `width` is 0 or greater than 64.
    pub fn var(&mut self, scope: &[&str], name: &str, width: u32) -> usize {
        assert!(
            (1..=64).contains(&width),
            "VCD var `{name}` width {width} out of range 1..=64"
        );
        self.vars.push(VcdVar {
            scope: scope.iter().map(|s| s.to_string()).collect(),
            name: name.to_string(),
            width,
        });
        self.vars.len() - 1
    }

    /// Declare a variable with an owned scope path.
    pub fn var_owned(&mut self, scope: Vec<String>, name: String, width: u32) -> usize {
        assert!(
            (1..=64).contains(&width),
            "VCD var `{name}` width {width} out of range 1..=64"
        );
        self.vars.push(VcdVar { scope, name, width });
        self.vars.len() - 1
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The declared variables, in declaration order.
    pub fn vars(&self) -> &[VcdVar] {
        &self.vars
    }
}

/// Encode a variable index as a VCD identifier code: base-94 over the
/// printable ASCII range `!` (33) to `~` (126), least-significant digit
/// first, matching the compact codes conventional simulators emit.
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1; // bijective numeration: "!!" follows "~", not "!"
    }
    code
}

/// Streaming VCD writer over any [`io::Write`] sink.
///
/// Construct with [`VcdWriter::new`] (which writes the full header
/// through `$enddefinitions`), then call [`VcdWriter::sample`] once per
/// timestep with one value per declared variable.
pub struct VcdWriter<W: Write> {
    out: W,
    widths: Vec<u32>,
    codes: Vec<String>,
    prev: Vec<u64>,
    started: bool,
    last_time: Option<u64>,
}

/// Mask `value` down to `width` bits (width 64 passes through).
fn mask(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

impl<W: Write> VcdWriter<W> {
    /// Write the VCD header (version, optional comment, timescale, scope
    /// tree, var declarations, `$enddefinitions`) and return a writer
    /// ready for samples.
    ///
    /// `comment` lines are embedded as a `$comment` block when non-empty;
    /// keep them deterministic (no timestamps) if byte-stable output
    /// matters. The timescale is fixed at `1 ns`: one "nanosecond" per
    /// simulated clock cycle.
    pub fn new(mut out: W, spec: &VcdSpec, comment: &str) -> io::Result<VcdWriter<W>> {
        writeln!(out, "$version sbst-repro wave writer $end")?;
        if !comment.is_empty() {
            writeln!(out, "$comment {comment} $end")?;
        }
        writeln!(out, "$timescale 1 ns $end")?;

        // Scope tree: walk vars in declaration order, opening/closing
        // `$scope module` blocks along the shared-prefix path.
        let mut open: Vec<&str> = Vec::new();
        let mut codes = Vec::with_capacity(spec.vars.len());
        for (i, v) in spec.vars.iter().enumerate() {
            let keep = open
                .iter()
                .zip(v.scope.iter())
                .take_while(|(a, b)| **a == b.as_str())
                .count();
            while open.len() > keep {
                open.pop();
                writeln!(out, "$upscope $end")?;
            }
            for s in &v.scope[keep..] {
                writeln!(out, "$scope module {s} $end")?;
                open.push(s);
            }
            let code = id_code(i);
            if v.width == 1 {
                writeln!(out, "$var wire 1 {code} {} $end", v.name)?;
            } else {
                writeln!(out, "$var wire {} {code} {} [{}:0] $end", v.width, v.name, v.width - 1)?;
            }
            codes.push(code);
        }
        while open.pop().is_some() {
            writeln!(out, "$upscope $end")?;
        }
        writeln!(out, "$enddefinitions $end")?;

        Ok(VcdWriter {
            out,
            widths: spec.vars.iter().map(|v| v.width).collect(),
            codes,
            prev: vec![0; spec.vars.len()],
            started: false,
            last_time: None,
        })
    }

    fn write_change(&mut self, i: usize, value: u64) -> io::Result<()> {
        let width = self.widths[i];
        let code = &self.codes[i];
        if width == 1 {
            writeln!(self.out, "{}{code}", value & 1)
        } else {
            write!(self.out, "b")?;
            for bit in (0..width).rev() {
                let c = if (value >> bit) & 1 == 1 { b'1' } else { b'0' };
                self.out.write_all(&[c])?;
            }
            writeln!(self.out, " {code}")
        }
    }

    /// Emit one timestep. `values` must have one entry per declared
    /// variable, in declaration order; each is masked to its var's width.
    ///
    /// The first call emits a `$dumpvars` block with every value; later
    /// calls emit only variables whose masked value changed (a timestamp
    /// with no changes is suppressed entirely).
    ///
    /// # Panics
    /// If `values.len()` differs from the declared var count, or if
    /// `time` is not strictly greater than the previous sample's time.
    pub fn sample(&mut self, time: u64, values: &[u64]) -> io::Result<()> {
        assert_eq!(
            values.len(),
            self.widths.len(),
            "sample has {} values for {} declared vars",
            values.len(),
            self.widths.len()
        );
        if let Some(last) = self.last_time {
            assert!(time > last, "VCD time must increase: {time} after {last}");
        }

        if !self.started {
            self.started = true;
            self.last_time = Some(time);
            writeln!(self.out, "#{time}")?;
            writeln!(self.out, "$dumpvars")?;
            for (i, &raw) in values.iter().enumerate() {
                let v = mask(raw, self.widths[i]);
                self.prev[i] = v;
                self.write_change(i, v)?;
            }
            writeln!(self.out, "$end")?;
            return Ok(());
        }

        self.last_time = Some(time);
        let mut stamped = false;
        for (i, &raw) in values.iter().enumerate() {
            let v = mask(raw, self.widths[i]);
            if v != self.prev[i] {
                if !stamped {
                    stamped = true;
                    writeln!(self.out, "#{time}")?;
                }
                self.prev[i] = v;
                self.write_change(i, v)?;
            }
        }
        Ok(())
    }

    /// Flush and hand back the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Render a complete VCD to a byte vector from a spec and a slice of
/// `(time, values)` rows — the convenience path the recorder layers use.
pub fn render_vcd(spec: &VcdSpec, comment: &str, rows: &[(u64, Vec<u64>)]) -> Vec<u8> {
    let mut w = VcdWriter::new(Vec::new(), spec, comment).expect("write to Vec cannot fail");
    for (t, values) in rows {
        w.sample(*t, values).expect("write to Vec cannot fail");
    }
    w.finish().expect("flush of Vec cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_bijective_base94() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
        assert_eq!(id_code(94 + 93), "~!");
        assert_eq!(id_code(94 + 94), "!\"");
        // No two indices may share a code.
        let codes: Vec<String> = (0..500).map(id_code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "duplicate identifier codes");
    }

    #[test]
    fn change_only_emission_suppresses_idle_timestamps() {
        let mut spec = VcdSpec::new();
        spec.var(&[], "clk_q", 1);
        spec.var(&[], "bus", 4);
        let rows = vec![
            (0, vec![0, 0b1010]),
            (1, vec![0, 0b1010]), // nothing changed: no #1 at all
            (2, vec![1, 0b1010]),
            (3, vec![1, 0b0011]),
        ];
        let text = String::from_utf8(render_vcd(&spec, "", &rows)).unwrap();
        assert!(text.contains("#0\n$dumpvars\n0!\nb1010 \"\n$end\n"), "bad dumpvars: {text}");
        assert!(!text.contains("#1"), "idle timestamp emitted: {text}");
        assert!(text.contains("#2\n1!\n"), "scalar change missing: {text}");
        assert!(text.contains("#3\nb0011 \"\n"), "vector change missing: {text}");
    }

    #[test]
    fn values_are_masked_to_width() {
        let mut spec = VcdSpec::new();
        spec.var(&[], "nib", 4);
        let rows = vec![(0, vec![0xFF]), (1, vec![0x1F])];
        let text = String::from_utf8(render_vcd(&spec, "", &rows)).unwrap();
        assert!(text.contains("b1111 !"), "mask failed: {text}");
        // 0x1F masked to 4 bits is still 0xF: no change at #1.
        assert!(!text.contains("#1"), "masked-equal value re-emitted: {text}");
    }

    #[test]
    fn scope_tree_follows_declaration_order() {
        let mut spec = VcdSpec::new();
        spec.var(&["top", "bus"], "addr", 8);
        spec.var(&["top", "bus"], "we", 1);
        spec.var(&["top", "regs"], "r1", 8);
        spec.var(&["other"], "x", 1);
        let text = String::from_utf8(render_vcd(&spec, "", &[(0, vec![0, 0, 0, 0])])).unwrap();
        let expected = "$scope module top $end\n\
                        $scope module bus $end\n\
                        $var wire 8 ! addr [7:0] $end\n\
                        $var wire 1 \" we $end\n\
                        $upscope $end\n\
                        $scope module regs $end\n\
                        $var wire 8 # r1 [7:0] $end\n\
                        $upscope $end\n\
                        $upscope $end\n\
                        $scope module other $end\n\
                        $var wire 1 $ x $end\n\
                        $upscope $end\n\
                        $enddefinitions $end\n";
        assert!(text.contains(expected), "scope tree drifted:\n{text}");
    }

    #[test]
    #[should_panic(expected = "width 65 out of range")]
    fn rejects_vars_wider_than_64() {
        VcdSpec::new().var(&[], "too_wide", 65);
    }

    #[test]
    #[should_panic(expected = "time must increase")]
    fn rejects_non_monotonic_time() {
        let mut spec = VcdSpec::new();
        spec.var(&[], "a", 1);
        let mut w = VcdWriter::new(Vec::new(), &spec, "").unwrap();
        w.sample(5, &[0]).unwrap();
        w.sample(5, &[1]).unwrap();
    }
}
