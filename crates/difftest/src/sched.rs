//! Coverage-feedback seed scheduling.
//!
//! Executed instructions from the oracle's golden trace are attributed to
//! processor components using the same component decomposition
//! `sbst::provenance` uses for detection attribution (the paper's Table
//! 1 component list, [`plasma::COMPONENT_NAMES`]). The scheduler then
//! re-weights the three steerable instruction classes of
//! [`mips::gen::GenConfig`] — branches (PCL), loads/stores (MCTRL) and
//! multiply/divide (MulD) — inversely to how much each component has been
//! exercised so far, biasing the next wave of random programs toward the
//! under-exercised parts of the core.
//!
//! All arithmetic is integer and the inputs are merged in seed order, so
//! scheduling is bit-identical regardless of worker-thread count.

use std::collections::BTreeMap;

use mips::gen::GenConfig;
use mips::isa::{Format, Instr};
use sbst::provenance::GoldenTrace;

/// Component a single instruction word predominantly exercises, named
/// after [`plasma::COMPONENT_NAMES`].
pub fn component_of(word: u32) -> &'static str {
    let i = Instr::decode(word);
    let op = match i.op {
        Some(op) => op,
        None => return "CTRL",
    };
    match op.format() {
        Format::RShift | Format::RShiftV => "BSH",
        Format::RMulDiv | Format::RMfHiLo | Format::RMtHiLo => "MulD",
        Format::IMem => "MCTRL",
        Format::IBranch2 | Format::IBranch1 | Format::IRegimm | Format::JAbs | Format::RJr
        | Format::RJalr => "PCL",
        Format::R3 | Format::ISigned | Format::IUnsigned | Format::ILui => "ALU",
    }
}

/// Accumulated per-component execution counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentExercise {
    /// Executed-instruction count per component name.
    pub counts: BTreeMap<&'static str, u64>,
}

impl ComponentExercise {
    /// Attribute every executed instruction of a golden trace.
    pub fn attribute(trace: &GoldenTrace) -> ComponentExercise {
        let mut ex = ComponentExercise::default();
        for &w in &trace.instrs {
            *ex.counts.entry(component_of(w)).or_insert(0) += 1;
        }
        ex
    }

    /// Merge another exercise record into this one.
    pub fn absorb(&mut self, other: &ComponentExercise) {
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
    }

    /// Count for one component.
    pub fn count(&self, component: &str) -> u64 {
        self.counts.get(component).copied().unwrap_or(0)
    }

    /// Total attributed instructions.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Derive the next wave's generation weights: a fixed budget of 40
    /// selection points (out of the 100-point draw space) is split among
    /// the branch / memory / muldiv classes in inverse proportion to how
    /// often their components have executed, clamped to `[4, 32]` so no
    /// class ever starves or dominates completely.
    pub fn reweight(&self, base: &GenConfig) -> GenConfig {
        const BUDGET: u128 = 40;
        // +1 smoothing keeps the inverse finite on a cold start.
        let c = [
            self.count("PCL") as u128 + 1,
            self.count("MCTRL") as u128 + 1,
            self.count("MulD") as u128 + 1,
        ];
        // weight_i ∝ 1/c_i, computed exactly: scale by the product of all
        // counts so the shares stay in integer arithmetic.
        let prod: u128 = c.iter().product();
        let inv: Vec<u128> = c.iter().map(|&x| prod / x).collect();
        let inv_sum: u128 = inv.iter().sum();
        let w = |i: usize| -> u64 {
            let raw = (BUDGET * inv[i] + inv_sum / 2) / inv_sum;
            (raw as u64).clamp(4, 32)
        };
        GenConfig {
            branch_weight: w(0),
            mem_weight: w(1),
            muldiv_weight: w(2),
            ..base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips::isa::{Op, Reg};

    #[test]
    fn attribution_covers_the_classes() {
        assert_eq!(component_of(Instr::r3(Op::Addu, Reg(1), Reg(2), Reg(3)).encode()), "ALU");
        assert_eq!(component_of(Instr::shift(Op::Sll, Reg(1), Reg(2), 3).encode()), "BSH");
        assert_eq!(component_of(Instr::mem(Op::Lw, Reg(1), Reg(2), 4).encode()), "MCTRL");
        let b = Instr {
            op: Some(Op::Beq),
            rs: Reg(1),
            rt: Reg(2),
            imm: 1,
            ..Default::default()
        };
        assert_eq!(component_of(b.encode()), "PCL");
        let m = Instr {
            op: Some(Op::Mult),
            rs: Reg(1),
            rt: Reg(2),
            ..Default::default()
        };
        assert_eq!(component_of(m.encode()), "MulD");
        assert_eq!(component_of(0xFFFF_FFFF), "CTRL");
    }

    #[test]
    fn reweight_biases_toward_the_starved_component() {
        let mut ex = ComponentExercise::default();
        ex.counts.insert("PCL", 10_000);
        ex.counts.insert("MCTRL", 10_000);
        ex.counts.insert("MulD", 10);
        let cfg = ex.reweight(&GenConfig::default());
        assert!(
            cfg.muldiv_weight > cfg.branch_weight && cfg.muldiv_weight > cfg.mem_weight,
            "starved MulD must get the largest weight: {cfg:?}"
        );
        assert!(cfg.branch_weight >= 4 && cfg.mem_weight >= 4);
    }

    #[test]
    fn reweight_is_deterministic_and_balanced_when_even() {
        let mut ex = ComponentExercise::default();
        for k in ["PCL", "MCTRL", "MulD"] {
            ex.counts.insert(k, 5_000);
        }
        let a = ex.reweight(&GenConfig::default());
        let b = ex.reweight(&GenConfig::default());
        assert_eq!(a.branch_weight, b.branch_weight);
        assert_eq!(a.branch_weight, a.mem_weight);
        assert_eq!(a.branch_weight, a.muldiv_weight);
    }
}
