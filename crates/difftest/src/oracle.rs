//! The lockstep oracle: golden ISS vs 64-lane gate-level Plasma.
//!
//! [`PlasmaOracle::run`] executes one program on both models in lockstep.
//! Every clock cycle the ISS's bus transaction (address, write data,
//! write enable, byte enables) is compared against lane 0 of the
//! bit-parallel netlist simulator; lanes 1–63 may carry injected stuck-at
//! faults and are compared against lane 0 the same way a fault-simulation
//! campaign does, so one run yields both a functional verdict (does the
//! netlist implement the ISA?) and per-fault detection localization
//! (first divergent cycle per lane).

use fault::model::Fault;
use fault::sim::{transpose_lanes, ParallelSim};
use fault::wave::WaveCapture;
use mips::disasm::disassemble;
use mips::gen::{END_MAILBOX, END_MARKER};
use mips::isa::Reg;
use mips::iss::{BusCycle, Iss, Memory};
use mips::Program;
use plasma::PlasmaCore;
use sbst::provenance::GoldenTrace;

/// Knobs for one oracle run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleConfig {
    /// Bytes of memory behind both models (rounded up to a power of two).
    pub mem_bytes: usize,
    /// Hard cycle cap — a program that neither diverges nor reaches the
    /// end marker within this budget reports `golden_cycles: None`.
    pub max_cycles: u64,
    /// Extra cycles simulated after the golden end-marker store, so a
    /// faulty lane that falls behind (e.g. a corrupted branch) still gets
    /// a chance to diverge observably.
    pub drain_cycles: u64,
    /// Disassembly window radius (instructions either side of the
    /// divergent PC) in the report.
    pub window: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            mem_bytes: 64 * 1024,
            max_cycles: 40_000,
            drain_cycles: 64,
            window: 4,
        }
    }
}

/// Lane-0 bus values captured from the netlist on the divergent cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateBus {
    /// Byte address driven on the bus.
    pub addr: u32,
    /// Write data.
    pub wdata: u32,
    /// Write enable.
    pub we: bool,
    /// Byte enables.
    pub be: u8,
}

/// One line of the disassembled window around the divergent PC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowLine {
    /// Instruction address.
    pub addr: u32,
    /// Raw instruction word.
    pub word: u32,
    /// Disassembly text.
    pub text: String,
    /// Whether this is the instruction at the divergent PC.
    pub current: bool,
}

/// A word where the ISS memory and the gate-level lane-0 memory disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// Word-aligned byte address.
    pub addr: u32,
    /// ISS value.
    pub iss: u32,
    /// Gate-level value.
    pub gate: u32,
}

/// Structured report of an ISS-vs-netlist divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// First cycle on which the two models' bus transactions differ.
    pub cycle: u64,
    /// ISS program counter at that cycle.
    pub pc: u32,
    /// What the golden model drove.
    pub iss: BusCycle,
    /// What the netlist (lane 0) drove.
    pub gate: GateBus,
    /// Disassembled instructions around `pc`.
    pub window: Vec<WindowLine>,
    /// ISS architectural registers at the divergent cycle.
    pub regs: [u32; 32],
    /// ISS HI register.
    pub hi: u32,
    /// ISS LO register.
    pub lo: u32,
    /// Memory words on which the two models disagree (first divergences
    /// only, capped — see [`Divergence::MEM_DELTA_CAP`]).
    pub mem_delta: Vec<MemDelta>,
}

impl Divergence {
    /// Maximum number of differing memory words included in a report.
    pub const MEM_DELTA_CAP: usize = 32;

    /// Render the report as human-readable text.
    pub fn to_report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "ISS/netlist divergence at cycle {} (pc {:#010x})\n",
            self.cycle, self.pc
        ));
        s.push_str(&format!(
            "  iss : addr {:#010x} we {} be {:#06b} wdata {:#010x}\n",
            self.iss.addr, self.iss.we as u8, self.iss.be, self.iss.wdata
        ));
        s.push_str(&format!(
            "  gate: addr {:#010x} we {} be {:#06b} wdata {:#010x}\n",
            self.gate.addr, self.gate.we as u8, self.gate.be, self.gate.wdata
        ));
        s.push_str("  window:\n");
        for l in &self.window {
            let mark = if l.current { ">" } else { " " };
            s.push_str(&format!(
                "  {mark} {:#010x}: {:08x}  {}\n",
                l.addr, l.word, l.text
            ));
        }
        s.push_str("  registers:\n");
        for row in 0..8 {
            s.push_str("   ");
            for col in 0..4 {
                let r = Reg((row * 4 + col) as u8);
                s.push_str(&format!(" {:>5}={:08x}", r.abi_name(), self.regs[r.0 as usize]));
            }
            s.push('\n');
        }
        s.push_str(&format!("    hi={:08x} lo={:08x}\n", self.hi, self.lo));
        if !self.mem_delta.is_empty() {
            s.push_str(&format!(
                "  memory delta ({} word{}):\n",
                self.mem_delta.len(),
                if self.mem_delta.len() == 1 { "" } else { "s" }
            ));
            for d in &self.mem_delta {
                s.push_str(&format!(
                    "    {:#010x}: iss {:08x} gate {:08x}\n",
                    d.addr, d.iss, d.gate
                ));
            }
        }
        s
    }
}

/// Outcome of one lockstep run.
#[derive(Debug, Clone, PartialEq)]
pub struct LockstepReport {
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Cycle count at which the ISS stored the end marker, or `None` if
    /// the budget ran out first.
    pub golden_cycles: Option<u64>,
    /// ISS-vs-lane-0 divergence, if any (the run stops there).
    pub divergence: Option<Divergence>,
    /// Per-lane first cycle on which the lane's observed bus outputs
    /// diverged from lane 0 (meaningful for lanes carrying faults).
    pub lane_first_div: [Option<u64>; 64],
    /// Per-cycle golden (pc, instruction) trace, for component
    /// attribution and detection localization.
    pub trace: GoldenTrace,
}

impl LockstepReport {
    /// True when neither the reference nor any faulty lane diverged.
    pub fn clean(&self) -> bool {
        self.divergence.is_none() && self.lane_first_div.iter().all(Option::is_none)
    }

    /// First divergence among the faulty lanes (1–63): `(lane, cycle)`.
    pub fn first_faulty_divergence(&self) -> Option<(usize, u64)> {
        self.lane_first_div
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(l, d)| d.map(|c| (l, c)))
            .min_by_key(|&(_, c)| c)
    }

    /// Whether the run counts as failing: the reference diverged from the
    /// ISS, or any injected fault was detected.
    pub fn diverged(&self) -> bool {
        self.divergence.is_some() || self.first_faulty_divergence().is_some()
    }
}

/// The reusable lockstep engine. Owns one compiled [`ParallelSim`] of the
/// core (the expensive part) plus 64 per-lane memory overlays, so a fuzz
/// or shrink loop pays the compile cost once.
pub struct PlasmaOracle<'a> {
    core: &'a PlasmaCore,
    sim: ParallelSim,
    cfg: OracleConfig,
    mask: usize,
    base: Vec<u32>,
    // Per-lane write overlays with generation tags, exactly as in
    // `plasma::SelfTestBench`: entry `lane * words + i` is live iff its
    // tag equals the current epoch, so starting a run is an O(1) bump.
    ovl_vals: Vec<u32>,
    ovl_gens: Vec<u32>,
    gen: u32,
    scratch: [u64; 64],
    bits: Vec<u64>,
    /// Oracle invocations since construction (shrink-loop bookkeeping).
    pub runs: u64,
}

impl<'a> PlasmaOracle<'a> {
    /// Compile the oracle for a core.
    pub fn new(core: &'a PlasmaCore, cfg: OracleConfig) -> PlasmaOracle<'a> {
        let [early, late] = core.segments();
        let sim = ParallelSim::with_segments(core.netlist(), &[early.to_vec(), late.to_vec()]);
        let words = (cfg.mem_bytes.max(16) / 4).next_power_of_two();
        PlasmaOracle {
            core,
            sim,
            cfg,
            mask: words - 1,
            base: vec![0; words],
            ovl_vals: vec![0; 64 * words],
            ovl_gens: vec![0; 64 * words],
            gen: 0,
            scratch: [0; 64],
            bits: Vec::new(),
            runs: 0,
        }
    }

    /// The oracle's configuration.
    pub fn config(&self) -> &OracleConfig {
        &self.cfg
    }

    fn read(&self, lane: usize, addr: u32) -> u32 {
        let i = (addr as usize >> 2) & self.mask;
        let idx = lane * (self.mask + 1) + i;
        if self.ovl_gens[idx] == self.gen {
            self.ovl_vals[idx]
        } else {
            self.base[i]
        }
    }

    fn write(&mut self, lane: usize, addr: u32, wdata: u32, be: u8) {
        let i = (addr as usize >> 2) & self.mask;
        let idx = lane * (self.mask + 1) + i;
        let old = if self.ovl_gens[idx] == self.gen {
            self.ovl_vals[idx]
        } else {
            self.base[i]
        };
        let mut m = 0u32;
        for b in 0..4 {
            if be & (1 << b) != 0 {
                m |= 0xFF << (8 * b);
            }
        }
        self.ovl_vals[idx] = (old & !m) | (wdata & m);
        self.ovl_gens[idx] = self.gen;
    }

    /// Run `program` in lockstep, with `faults` injected into their lanes
    /// (lane 0 faults the reference itself — useful to demonstrate the
    /// divergence report; lanes 1–63 are graded against lane 0).
    pub fn run(&mut self, program: &Program, faults: &[(Fault, usize)]) -> LockstepReport {
        self.run_inner(program, faults, None)
    }

    /// [`PlasmaOracle::run`] with a waveform capture attached: every
    /// cycle (post-clock) lanes 0 and `faulty_lane` are sampled into
    /// `cap`, and the capture triggers on the first divergence — ISS vs
    /// lane 0, or any faulty lane vs lane 0. Unlike `run`, an ISS
    /// divergence does not stop the gate simulation immediately: it
    /// drains `cap`'s post-trigger window first (so `cycles` in the
    /// report includes those drain cycles). For a fault-free run pass
    /// `faulty_lane = 0`; the `faulty` and `diff` scopes are then flat
    /// and the `good` scope shows the gate machine around the
    /// divergence.
    pub fn run_wave(
        &mut self,
        program: &Program,
        faults: &[(Fault, usize)],
        cap: &mut WaveCapture,
        faulty_lane: usize,
    ) -> LockstepReport {
        self.run_inner(program, faults, Some((cap, faulty_lane)))
    }

    fn run_inner(
        &mut self,
        program: &Program,
        faults: &[(Fault, usize)],
        mut wave: Option<(&mut WaveCapture, usize)>,
    ) -> LockstepReport {
        self.runs += 1;
        self.base.fill(0);
        for (k, &w) in program.words.iter().enumerate() {
            self.base[((program.base as usize >> 2) + k) & self.mask] = w;
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Tag wrap-around: stale tags could alias the new epoch.
            self.ovl_gens.fill(0);
            self.gen = 1;
        }
        self.sim.clear_faults();
        for &(f, lane) in faults {
            self.sim.inject(f, lane);
        }
        self.sim.reset_state();

        let mut iss = Iss::new();
        let mut iss_mem = Memory::new(self.cfg.mem_bytes);
        iss_mem.load_program(program);

        let core = self.core;
        let nl = core.netlist();
        let addr_nets = nl.port("mem_addr");
        let wdata_nets = nl.port("mem_wdata");
        let we_net = nl.port("mem_we")[0];
        let be_nets = nl.port("mem_be");
        let observed = core.observed_outputs();

        let mut trace = GoldenTrace {
            pcs: Vec::new(),
            instrs: Vec::new(),
        };
        let mut lane_first_div = [None; 64];
        let mut golden_cycles = None;
        let mut divergence = None;
        let mut stop_at = self.cfg.max_cycles;
        let mut cycle = 0u64;

        while cycle < stop_at {
            self.sim.eval_segment(0);
            let we_lanes = self.sim.net_lanes(we_net);
            let mut gate = GateBus {
                addr: 0,
                wdata: 0,
                we: false,
                be: 0,
            };
            for lane in 0..64 {
                let addr = self.sim.lane_word(addr_nets, lane) as u32;
                let wdata = self.sim.lane_word(wdata_nets, lane) as u32;
                let be = self.sim.lane_word(be_nets, lane) as u8;
                let we = (we_lanes >> lane) & 1 == 1;
                // Like `Memory::access`, a store cycle returns the old word.
                self.scratch[lane] = self.read(lane, addr) as u64;
                if we {
                    self.write(lane, addr, wdata, be);
                }
                if lane == 0 {
                    gate = GateBus {
                        addr,
                        wdata,
                        we,
                        be,
                    };
                }
            }
            transpose_lanes(&self.scratch, 32, &mut self.bits);
            self.sim.set_port_bits(nl, "mem_rdata", &self.bits);
            self.sim.eval_segment(1);
            let diff = self.sim.diff_vs_lane0(observed);
            self.sim.clock();

            let mut d = diff & !1;
            while d != 0 {
                let lane = d.trailing_zeros() as usize;
                if lane_first_div[lane].is_none() {
                    lane_first_div[lane] = Some(cycle);
                }
                d &= d - 1;
            }

            // The ISS only runs while the reference still tracks it; a
            // wave-attached run keeps simulating the gate machine after
            // an ISS divergence to fill the post-trigger window.
            let mut diverged_now = false;
            if divergence.is_none() {
                let pc = iss.pc();
                trace.pcs.push(pc);
                trace.instrs.push(iss_mem.read_word(pc));
                let want = iss.cycle(&mut iss_mem);

                if (gate.addr, gate.wdata, gate.we, gate.be)
                    != (want.addr, want.wdata, want.we, want.be)
                {
                    divergence = Some(self.capture(&iss, &iss_mem, cycle, pc, want, gate));
                    diverged_now = true;
                } else if golden_cycles.is_none()
                    && want.we
                    && want.be == 0b1111
                    && want.addr == END_MAILBOX
                    && want.wdata == END_MARKER
                {
                    golden_cycles = Some(cycle + 1);
                    stop_at = (cycle + 1 + self.cfg.drain_cycles).min(self.cfg.max_cycles);
                }
            }

            match &mut wave {
                Some((cap, faulty_lane)) => {
                    cap.record(&self.sim, cycle, *faulty_lane);
                    if diverged_now || diff & !1 != 0 {
                        cap.mark_trigger(cycle);
                    }
                    if cap.done(cycle) {
                        cycle += 1;
                        break;
                    }
                }
                None => {
                    if diverged_now {
                        cycle += 1;
                        break;
                    }
                }
            }
            cycle += 1;
        }

        LockstepReport {
            cycles: cycle,
            golden_cycles,
            divergence,
            lane_first_div,
            trace,
        }
    }

    fn capture(
        &self,
        iss: &Iss,
        iss_mem: &Memory,
        cycle: u64,
        pc: u32,
        want: BusCycle,
        gate: GateBus,
    ) -> Divergence {
        let w = self.cfg.window as i64;
        let mut window = Vec::new();
        for k in -w..=w {
            let addr = pc.wrapping_add((k * 4) as u32);
            if (addr as usize >> 2) > self.mask {
                continue;
            }
            let word = iss_mem.read_word(addr);
            window.push(WindowLine {
                addr,
                word,
                text: disassemble(word, addr),
                current: k == 0,
            });
        }
        let mut regs = [0u32; 32];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = iss.reg(Reg(i as u8));
        }
        let (hi, lo) = iss.hi_lo();
        let mut mem_delta = Vec::new();
        for i in 0..=self.mask {
            let addr = (i * 4) as u32;
            let gv = self.read(0, addr);
            let iv = iss_mem.read_word(addr);
            if gv != iv {
                mem_delta.push(MemDelta {
                    addr,
                    iss: iv,
                    gate: gv,
                });
                if mem_delta.len() >= Divergence::MEM_DELTA_CAP {
                    break;
                }
            }
        }
        Divergence {
            cycle,
            pc,
            iss: want,
            gate,
            window,
            regs,
            hi,
            lo,
            mem_delta,
        }
    }
}
