//! Run-ledger trend viewer and perf-regression gate.
//!
//! ```text
//! ledger                         # trend tables from results/LEDGER.jsonl
//! ledger --check                 # gate the latest record; exit 1 on regression
//! ledger --baseline last         # gate against the previous run, not the best
//! ledger --max-drop 15           # tolerate a 15% throughput drop
//! ledger --max-cov-drop 0.5      # tolerate a 0.5pp coverage drop
//! ledger --ledger FILE           # alternate ledger file
//! ledger --json FILE             # trend JSON output (default results/BENCH_trend.json)
//! ledger --serve PORT            # keep serving the latest ledger as gauges
//! ledger --append-degraded 0.5   # clone the last record at half throughput
//!                                #   (CI negative test for --check)
//! ```
//!
//! The gate compares the *latest* record against earlier comparable ones
//! (same kind + netlist fingerprint + fault count; throughput additionally
//! requires the same thread count). Defaults: fail on a >10% throughput
//! drop versus the best comparable run, or on any coverage drop. A ledger
//! with no comparable baseline passes — a first run cannot regress.

use std::process::ExitCode;

use obs::ledger::{self, Baseline, GateConfig};
use obs::MetricRegistry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ledger_path = std::path::PathBuf::from("results/LEDGER.jsonl");
    let mut json_out = std::path::PathBuf::from("results/BENCH_trend.json");
    let mut check = false;
    let mut cfg = GateConfig::default();
    let mut degrade: Option<f64> = None;
    let mut serve_port: Option<u16> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ledger" => {
                ledger_path = it.next().expect("--ledger needs a path").into();
            }
            "--json" => {
                json_out = it.next().expect("--json needs a path").into();
            }
            "--check" => check = true,
            "--baseline" => {
                cfg.baseline = match it.next().expect("--baseline needs best|last").as_str() {
                    "best" => Baseline::Best,
                    "last" => Baseline::Last,
                    other => {
                        eprintln!("--baseline must be `best` or `last`, got `{other}`");
                        return ExitCode::from(2);
                    }
                };
            }
            "--max-drop" => {
                cfg.max_throughput_drop_pct = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-drop needs a percentage");
            }
            "--max-cov-drop" => {
                cfg.max_coverage_drop_pct = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-cov-drop needs percentage points");
            }
            "--append-degraded" => {
                degrade = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--append-degraded needs a factor"),
                );
            }
            "--serve" => {
                serve_port = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--serve needs a port"),
                );
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: ledger [--ledger file] [--check] [--baseline best|last] \
                     [--max-drop PCT] [--max-cov-drop PP] [--json file] \
                     [--append-degraded FACTOR] [--serve port]"
                );
                return ExitCode::from(2);
            }
        }
    }

    if let Some(factor) = degrade {
        let (records, _) = ledger::load(&ledger_path).expect("read ledger");
        let Some(last) = records.last() else {
            eprintln!("--append-degraded: ledger at {} is empty", ledger_path.display());
            return ExitCode::from(2);
        };
        let mut rec = last.clone();
        rec.cmd = format!("ledger --append-degraded {factor}");
        rec.mlane_cps *= factor;
        ledger::append(&ledger_path, &rec).expect("append degraded record");
        eprintln!(
            "[degraded clone of the last `{}` record appended: {:.2} -> {:.2} Mlane-cyc/s]",
            rec.kind,
            last.mlane_cps,
            rec.mlane_cps
        );
    }

    let (records, skipped) = ledger::load(&ledger_path).expect("read ledger");
    if skipped > 0 {
        eprintln!(
            "[{skipped} unparseable/newer-schema line(s) in {} skipped]",
            ledger_path.display()
        );
    }
    println!("run ledger: {} ({} records)\n", ledger_path.display(), records.len());
    print!("{}", ledger::trend_table(&records));

    let gate = ledger::check(&records, &cfg);
    println!(
        "\ngate ({} baseline, max throughput drop {}%, max coverage drop {}pp): {}",
        match cfg.baseline {
            Baseline::Best => "best",
            Baseline::Last => "last",
        },
        cfg.max_throughput_drop_pct,
        cfg.max_coverage_drop_pct,
        if gate.pass { "PASS" } else { "FAIL" }
    );
    for f in &gate.findings {
        println!(
            "  {:<10} current {:>10.2}  baseline {:>10.2}  drop {:>7.2}{}  {}",
            f.metric,
            f.current,
            f.baseline,
            f.drop,
            if f.metric == "coverage" { "pp" } else { "%" },
            if f.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for n in &gate.notes {
        println!("  note: {n}");
    }

    if let Some(dir) = json_out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create trend dir");
    }
    let mut trend = ledger::trend_json(&records, Some(&gate));
    // The engines microbench (`cargo bench -p bench`) owns the
    // `microbench` key of the trend file; carry it across rewrites.
    if let Ok(prev) = std::fs::read_to_string(&json_out) {
        if let (Ok(serde_json::Value::Object(prev)), serde_json::Value::Object(root)) =
            (serde_json::from_str(&prev), &mut trend)
        {
            if let Some(micro) = prev.get("microbench") {
                root.insert("microbench".into(), micro.clone());
            }
        }
    }
    std::fs::write(
        &json_out,
        serde_json::to_string_pretty(&trend).expect("serialize"),
    )
    .expect("write trend json");
    eprintln!("[trend written to {}]", json_out.display());

    if let Some(port) = serve_port {
        // Re-publish the latest record per kind as gauges so a scraper
        // can watch the ledger without parsing JSONL.
        let reg = MetricRegistry::new();
        let mut seen: Vec<&str> = Vec::new();
        for r in records.iter().rev() {
            if seen.contains(&r.kind.as_str()) {
                continue;
            }
            seen.push(&r.kind);
            let labels = [("kind", r.kind.as_str())];
            reg.gauge(
                "sbst_ledger_mlane_cycles_per_sec",
                "latest ledger throughput",
                &labels,
            )
            .set(r.mlane_cps);
            if let Some(cov) = r.coverage_pct {
                reg.gauge("sbst_ledger_coverage_pct", "latest ledger coverage", &labels)
                    .set(cov);
            }
            reg.gauge("sbst_ledger_ts", "latest ledger record unix time", &labels)
                .set(r.ts as f64);
        }
        let timeline =
            obs::Timeline::start(reg.clone(), std::time::Duration::from_millis(1000), 2400);
        let observatory = obs::Observatory::new(reg).with_timeline(timeline);
        let srv = obs::serve::serve_observatory(observatory, port).expect("bind metric server");
        eprintln!(
            "[serving http://{}/ — /metrics /json /timeline — ctrl-C to exit]",
            srv.addr()
        );
        loop {
            std::thread::park();
        }
    }

    if check && !gate.pass {
        eprintln!("regression gate FAILED");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
