//! Phase-based self-test program construction (paper Figure 3).
//!
//! Phase A targets the four functional components in descending size
//! order; Phase B adds the memory controller (the largest control
//! component with the greatest missed-coverage contribution after
//! Phase A); Phase C — which the paper defines but does not need for its
//! coverage goal — adds a control-flow routine for the PC logic and
//! decoder.

use mips::asm::{assemble, AsmError, Program};

use crate::routines::{self, Routine, END_MARKER, MAILBOX, RESP_BASE};

/// Test-development phase (cumulative: B includes A, C includes B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Functional components: RegF, MulD, ALU, BSH.
    A,
    /// Phase A plus the memory controller.
    B,
    /// Phase B plus the control-flow (PCL/CTRL) routine.
    C,
}

impl Phase {
    /// The routines this phase comprises, in test-priority order.
    pub fn routines(self) -> Vec<Routine> {
        let mut r = vec![
            routines::regfile_routine(),
            routines::muldiv_routine(),
            routines::shifter_routine(),
            routines::alu_routine(),
        ];
        if self >= Phase::B {
            r.push(routines::mctrl_routine());
        }
        if self >= Phase::C {
            r.push(routines::control_routine());
            r.push(routines::pcl_ladder_routine());
        }
        r
    }

    /// Display name ("Phase A", ...).
    pub fn name(self) -> &'static str {
        match self {
            Phase::A => "Phase A",
            Phase::B => "Phase A+B",
            Phase::C => "Phase A+B+C",
        }
    }
}

/// A fully built self-test program.
#[derive(Debug, Clone)]
pub struct SelfTestProgram {
    /// The phase it was built for.
    pub phase: Phase,
    /// Complete assembly source.
    pub source: String,
    /// Assembled image.
    pub program: Program,
}

impl SelfTestProgram {
    /// Downloaded program size in 32-bit words (code + tables, excluding
    /// address gaps) — the Table 4 "Test Program (words)" figure.
    pub fn size_words(&self) -> usize {
        self.program.size_download_words()
    }
}

/// Build the self-test program for a phase.
///
/// The register-file routine runs inline first (it clobbers every
/// register). The remaining routines are *subroutines* invoked with
/// `jal` (and one with `jalr`, one return jump with `j`) — besides being
/// how real self-test programs are organized, the calling structure
/// exercises the jump/link paths of the PC logic and result bus as
/// collateral. Operand tables follow all code.
pub fn build_program(phase: Phase) -> Result<SelfTestProgram, AsmError> {
    let routines = phase.routines();
    let mut main = String::new();
    let mut subs = String::new();
    let mut tables = String::new();
    let mut high = String::new();
    for (k, r) in routines.iter().enumerate() {
        if k == 0 {
            // Inline register-file march, then set up the shared
            // response pointer.
            main.push_str(&format!("# ---- {} routine (inline) ----\n", r.component));
            main.push_str(&r.code);
            main.push_str(&format!("        li   $s2, 0x{:x}\n", RESP_BASE + 0x400));
        } else if k == 3 {
            // One call through jalr for the register-target decode path.
            main.push_str(&format!("        la   $t9, rt_{k}_{}\n", r.component));
            main.push_str("        jalr $t9\n");
            main.push_str("        nop\n");
            subs.push_str(&format!(
                "rt_{k}_{}:\n{}        jr   $ra\n        nop\n",
                r.component, r.code
            ));
        } else {
            main.push_str(&format!("        jal  rt_{k}_{}\n", r.component));
            main.push_str("        nop\n");
            subs.push_str(&format!(
                "rt_{k}_{}:\n{}        jr   $ra\n        nop\n",
                r.component, r.code
            ));
        }
        tables.push_str(&r.tables);
        high.push_str(&r.high_code);
    }
    main.push_str("# ---- end of test ----\n");
    main.push_str(&format!("        li   $k1, 0x{END_MARKER:x}\n"));
    main.push_str(&format!("        sw   $k1, 0x{MAILBOX:x}($zero)\n"));
    main.push_str("selftest_done:\n");
    main.push_str("        j    selftest_done\n");
    main.push_str("        nop\n");
    let src = format!("{main}{subs}{tables}{high}");
    let program = assemble(&src)?;
    Ok(SelfTestProgram {
        phase,
        source: src,
        program,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips::iss::{Iss, Memory};

    #[test]
    fn phase_programs_build_and_terminate() {
        for phase in [Phase::A, Phase::B, Phase::C] {
            let st = build_program(phase).expect("assembles");
            let mut mem = Memory::new(64 * 1024);
            mem.load_program(&st.program);
            let mut cpu = Iss::new();
            let trace = cpu.run_until_store(&mut mem, MAILBOX, END_MARKER, 100_000);
            let last = trace.last().unwrap();
            assert!(
                last.we && last.addr == MAILBOX,
                "{}: never reached the marker",
                phase.name()
            );
            println!(
                "{}: {} words, {} cycles",
                phase.name(),
                st.size_words(),
                trace.len()
            );
            // Table 4 ballpark: around 1K words, a few thousand cycles.
            assert!(st.size_words() < 2500, "{}: program too large", phase.name());
            assert!(trace.len() < 40_000, "{}: too slow", phase.name());
        }
    }

    #[test]
    fn phases_are_cumulative_in_size() {
        let a = build_program(Phase::A).unwrap();
        let b = build_program(Phase::B).unwrap();
        let c = build_program(Phase::C).unwrap();
        assert!(a.size_words() < b.size_words());
        assert!(b.size_words() < c.size_words());
    }

    #[test]
    fn responses_do_not_overrun_the_region() {
        // The response pointer must stay inside [RESP_BASE, MCTRL_SCRATCH).
        let st = build_program(Phase::C).unwrap();
        let mut mem = Memory::new(64 * 1024);
        mem.load_program(&st.program);
        let mut cpu = Iss::new();
        let trace = cpu.run_until_store(&mut mem, MAILBOX, END_MARKER, 100_000);
        for c in &trace {
            if c.we && c.addr != MAILBOX {
                assert!(
                    (RESP_BASE..crate::routines::MCTRL_SCRATCH + 0x1000).contains(&c.addr),
                    "stray store to {:#x}",
                    c.addr
                );
            }
        }
    }
}
