//! A minimal, std-only benchmark harness exposing the subset of the
//! `criterion` crate's surface this workspace's benches use:
//! [`Criterion::bench_function`], benchmark groups with throughput
//! annotations, [`Bencher::iter`]/[`Bencher::iter_batched`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched; this local crate shadows it via a workspace path
//! dependency. Measurements are wall-clock samples reported as
//! min / median / mean to stdout — enough to track perf trajectories in
//! `results/`, with stable output formatting for diffing.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility; every
/// batch is one input here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, reported as throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to the closure of a `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` once per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` on a fresh un-timed `setup()` input per sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut line = format!(
        "{name:<40} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  [{:.2} Melem/s]", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  [{:.2} MB/s]", per_sec(n) / 1e6));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver: holds configuration, runs and reports benches.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set samples per benchmark (builder style, like real criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &mut b.samples, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with units processed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.parent.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), &mut b.samples, self.throughput);
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declare a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
