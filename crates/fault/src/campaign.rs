//! Fault-simulation campaigns: batching, fault dropping, detection
//! records, and execution observability.
//!
//! A campaign simulates every fault in a [`FaultList`] against a stimulus
//! source, `lanes - 1` faults at a time (lane 0 carries the fault-free
//! reference), and records when each fault is first *detected* — i.e.
//! when the faulty machine's primary-output behaviour diverges from the
//! reference. Batches end early once all their faults are detected
//! (fault dropping).
//!
//! Two engines implement the same contract:
//!
//! * the interpreted [`ParallelSim`] (64 lanes, [`Testbench`], runners
//!   [`run`]/[`run_parallel`]) — the differential reference;
//! * the compiled [`WideSim`] (64–512 lanes, [`WideTestbench`], runners
//!   [`run_wide`]/[`run_parallel_wide`]) — the default, selected via
//!   [`crate::engine::EngineConfig`].
//!
//! Serial and parallel runners share all machinery: the parallel ones
//! shard the batch sequence over worker threads pulling batches off a
//! cache-line-padded atomic cursor, each worker owning its own simulator
//! state (wide workers share one immutable compiled kernel by `Arc`).
//! Batches are independent — the simulator state is rebuilt from scratch
//! per batch — so the merged result is bit-identical to the serial one
//! at every thread count, and a fault's detection is independent of lane
//! width, so all four runners agree fault for fault.
//!
//! Both have `*_with` variants taking [`CampaignHooks`]: an optional
//! structured [`obs::Tracer`] (JSONL `campaign`/`batch` events with
//! thread ids and wall-clock deltas) and an optional [`obs::Progress`]
//! ticker. Every run also folds execution metrics into
//! [`CampaignStats`]: cycles vs budget, a detection-latency histogram,
//! and per-worker batch/cycle/wall throughput. With hooks disabled (the
//! default) the instrumentation reduces to one branch per *batch*, so
//! the simulation hot loop is untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use netlist::Netlist;
use obs::{
    EventBus, LatencyHistogram, MetricRegistry, PhaseProfile, ProfilePhase, Profiler, Progress,
    Tracer,
};
use serde_json::Value;

use crate::model::{Fault, FaultList};
use crate::sim::{ParallelSim, SimStats};
use crate::wide::WideSim;

/// Wraps the shared batch cursor so it owns a full cache line: workers
/// on different cores hammer `fetch_add` on it, and without padding the
/// line would also carry neighbouring stack data (false sharing — one
/// cause of the recorded 4-thread regression).
#[repr(align(128))]
struct CachePadded<T>(T);

/// Stimulus source driven by the campaign runner, one clock cycle at a
/// time.
///
/// Implementations drive primary inputs, call
/// [`ParallelSim::eval_segment`]/[`ParallelSim::eval_all`] and
/// [`ParallelSim::clock`], and report which lanes diverged from lane 0 at
/// the observation points this cycle. The processor testbench in the
/// `plasma` crate implements this with a per-lane memory model; simple
/// vector application is provided here by [`VectorBench`].
pub trait Testbench {
    /// Prepare for a fresh batch. Called after faults are injected and the
    /// simulator's flip-flops are reset.
    fn begin(&mut self, sim: &mut ParallelSim);

    /// Execute one clock cycle and return the mask of lanes whose observed
    /// outputs diverged from lane 0 during this cycle.
    fn step(&mut self, sim: &mut ParallelSim, cycle: u64) -> u64;

    /// Total number of cycles to run per batch.
    fn cycles(&self) -> u64;
}

/// Per-fault outcome of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// Never diverged within the cycle budget.
    Undetected,
    /// First divergence observed at this cycle.
    DetectedAt(u64),
}

impl Detection {
    /// Whether the fault was detected.
    pub fn is_detected(self) -> bool {
        matches!(self, Detection::DetectedAt(_))
    }
}

/// Per-worker execution metrics of one campaign run (one entry for a
/// serial run). Batch runtimes are uneven because of fault dropping, so
/// these expose how well the dynamic batch cursor balanced the load.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Worker index (spawn order; 0 for the serial runner).
    pub worker: usize,
    /// Batches this worker pulled off the cursor.
    pub batches: u64,
    /// Cycles this worker simulated.
    pub cycles: u64,
    /// Wall-clock seconds this worker spent in its batch loop.
    pub wall_seconds: f64,
    /// Lanes per simulated cycle on this worker's engine.
    pub lanes: u64,
}

impl WorkerStats {
    /// This worker's throughput in millions of lane-cycles per second.
    pub fn mlane_cycles_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.cycles as f64 * self.lanes as f64) / self.wall_seconds / 1e6
    }
}

/// Measured execution statistics of a campaign run — the observability
/// layer that turns "it feels faster" into numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Number of `lanes - 1`-fault batches simulated.
    pub batches: u64,
    /// Clock cycles actually simulated, summed over batches (fault
    /// dropping ends batches early, so this is ≤ `budget_cycles`).
    pub cycles_simulated: u64,
    /// Cycles a drop-free run would have cost (batches × budget).
    pub budget_cycles: u64,
    /// Faults detected before the cycle budget ran out (each detection
    /// drops that fault from further observation).
    pub faults_dropped: u64,
    /// Wall-clock time of the campaign.
    pub wall_seconds: f64,
    /// Worker threads used (1 = serial).
    pub threads: usize,
    /// Detection-latency histogram: cycle of first divergence, in
    /// power-of-two buckets.
    pub latency: LatencyHistogram,
    /// Per-worker batch/cycle/wall metrics (one entry when serial).
    pub workers: Vec<WorkerStats>,
    /// Hot-loop phase profile accumulated by this run (empty unless the
    /// hooks carried an enabled [`Profiler`]).
    pub profile: PhaseProfile,
    /// Simulation engine that produced this run (`"interp"` or
    /// `"compiled"`).
    pub engine: &'static str,
    /// Lanes per simulated cycle (64 for the interpreted engine, up to
    /// 512 for the compiled one).
    pub lanes: u64,
}

impl Default for CampaignStats {
    fn default() -> Self {
        CampaignStats {
            batches: 0,
            cycles_simulated: 0,
            budget_cycles: 0,
            faults_dropped: 0,
            wall_seconds: 0.0,
            threads: 1,
            latency: LatencyHistogram::new(),
            workers: Vec::new(),
            profile: PhaseProfile::default(),
            engine: "interp",
            lanes: 64,
        }
    }
}

impl CampaignStats {
    /// Simulation throughput in millions of lane-cycles per second
    /// (`lanes` faulty machines per simulated cycle).
    pub fn mlane_cycles_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.cycles_simulated as f64 * self.lanes as f64) / self.wall_seconds / 1e6
    }
}

/// Latency histogram over a detection vector (cycle of first
/// divergence for every detected fault).
pub(crate) fn latency_of(detections: &[Detection]) -> LatencyHistogram {
    LatencyHistogram::from_cycles(detections.iter().filter_map(|d| match d {
        Detection::DetectedAt(c) => Some(*c),
        Detection::Undetected => None,
    }))
}

/// Observability hooks a campaign runner threads through its batch loop:
/// a structured tracer for `campaign`/`batch` events, an optional
/// live-progress ticker, a hot-loop [`Profiler`], and an optional
/// [`MetricRegistry`] receiving batch/cycle/detection counters. All are
/// cheap clonable handles; the default is fully disabled and adds one
/// branch per batch. None of them touch simulation state, so results
/// stay bit-identical with hooks on or off.
#[derive(Debug, Clone, Default)]
pub struct CampaignHooks {
    /// Structured event sink (disabled by default).
    pub tracer: Tracer,
    /// Live batch-progress counters + stderr ticker.
    pub progress: Option<Progress>,
    /// Self-profiler attributing wall-time to hot-loop phases (disabled
    /// by default). Share the same handle with the testbench (e.g.
    /// `SelfTestBench::with_profiler`) to capture the per-cycle phases
    /// too; the runner itself only times batch patch/reset.
    pub profiler: Profiler,
    /// Registry receiving `sbst_batches_total`, `sbst_cycles_total`,
    /// `sbst_faults_detected_total`, a detection-latency histogram, and
    /// a throughput gauge. Updates happen at batch granularity.
    pub metrics: Option<MetricRegistry>,
    /// Live event bus receiving the same `campaign_begin`/`batch`/
    /// `campaign_end` events the tracer logs, for SSE subscribers.
    /// Bounded and drop-oldest: publishing never blocks the batch loop.
    pub events: Option<EventBus>,
}

impl CampaignHooks {
    /// Hooks with everything disabled (what [`run`]/[`run_parallel`]
    /// use).
    pub fn none() -> CampaignHooks {
        CampaignHooks::default()
    }

    /// Hooks writing trace events to `tracer`.
    pub fn with_tracer(tracer: Tracer) -> CampaignHooks {
        CampaignHooks {
            tracer,
            ..CampaignHooks::default()
        }
    }
}

/// Pre-registered per-batch counter handles (so the batch loop pays one
/// atomic add per counter, never a registry lock).
struct BatchCounters {
    batches: obs::Counter,
    cycles: obs::Counter,
}

impl BatchCounters {
    fn of(registry: &MetricRegistry) -> BatchCounters {
        BatchCounters {
            batches: registry.counter(
                "sbst_batches_total",
                "63-fault simulation batches completed",
                &[],
            ),
            cycles: registry.counter(
                "sbst_cycles_total",
                "clock cycles simulated across all batches",
                &[],
            ),
        }
    }
}

/// Fold a finished run's summary metrics into the registry: detections,
/// throughput gauge, and the detection-latency histogram.
fn publish_run_metrics(registry: &MetricRegistry, stats: &CampaignStats) {
    registry
        .counter(
            "sbst_faults_detected_total",
            "faults detected (dropped) across campaigns",
            &[],
        )
        .inc(stats.faults_dropped);
    registry
        .gauge(
            "sbst_mlane_cycles_per_sec",
            "throughput of the last campaign, millions of lane-cycles per second",
            &[],
        )
        .set(stats.mlane_cycles_per_sec());
    registry
        .histogram(
            "sbst_detection_latency_cycles",
            "cycle of first divergence per detected fault",
            &[],
        )
        .absorb(&stats.latency);
    stats.profile.export(registry);
}

/// Number of 63-fault batches an interpreted-engine campaign over
/// `faults` will run — the `total` to size an [`obs::Progress`] ticker
/// with.
pub fn batch_count(faults: &FaultList) -> u64 {
    batch_count_lanes(faults, 64)
}

/// Number of `lanes - 1`-fault batches a campaign over `faults` will
/// run at a given lane width.
pub fn batch_count_lanes(faults: &FaultList, lanes: usize) -> u64 {
    faults.len().div_ceil(lanes - 1) as u64
}

/// Result of running a campaign over a fault list.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The fault list the campaign ran over (clone).
    pub faults: FaultList,
    /// Outcome per fault, parallel to `faults`.
    pub detections: Vec<Detection>,
    /// Execution statistics of the run that produced this result.
    pub stats: CampaignStats,
}

impl CampaignResult {
    /// Weighted fault coverage in `[0, 1]`: detected equivalence classes
    /// weighted by how many raw faults they represent, the figure
    /// commercial fault simulators report.
    pub fn coverage(&self) -> f64 {
        let total: u64 = self.faults.weight.iter().map(|&w| w as u64).sum();
        if total == 0 {
            return 1.0;
        }
        let detected: u64 = self
            .detections
            .iter()
            .zip(&self.faults.weight)
            .filter(|(d, _)| d.is_detected())
            .map(|(_, &w)| w as u64)
            .sum();
        detected as f64 / total as f64
    }

    /// Unweighted coverage over equivalence classes.
    pub fn coverage_classes(&self) -> f64 {
        if self.detections.is_empty() {
            return 1.0;
        }
        self.detections.iter().filter(|d| d.is_detected()).count() as f64
            / self.detections.len() as f64
    }

    /// Latest detection cycle over all detected faults (test length
    /// actually needed), if any fault was detected.
    pub fn last_detection_cycle(&self) -> Option<u64> {
        self.detections
            .iter()
            .filter_map(|d| match d {
                Detection::DetectedAt(c) => Some(*c),
                Detection::Undetected => None,
            })
            .max()
    }

    /// Merge another campaign over the *same fault list* (e.g. a second
    /// test program): a fault is detected if either campaign detects it.
    ///
    /// # Panics
    ///
    /// Panics if the fault lists differ.
    pub fn merge(&self, other: &CampaignResult) -> CampaignResult {
        assert_eq!(
            self.faults.faults, other.faults.faults,
            "merging campaigns over different fault lists"
        );
        let detections = self
            .detections
            .iter()
            .zip(&other.detections)
            .map(|(a, b)| match (a, b) {
                (Detection::DetectedAt(x), Detection::DetectedAt(y)) => {
                    Detection::DetectedAt(*x.min(y))
                }
                (Detection::DetectedAt(x), _) => Detection::DetectedAt(*x),
                (_, Detection::DetectedAt(y)) => Detection::DetectedAt(*y),
                _ => Detection::Undetected,
            })
            .collect::<Vec<_>>();
        let mut workers = self.stats.workers.clone();
        workers.extend(other.stats.workers.iter().cloned());
        let latency = latency_of(&detections);
        let mut profile = self.stats.profile;
        profile.absorb(&other.stats.profile);
        CampaignResult {
            faults: self.faults.clone(),
            detections,
            stats: CampaignStats {
                batches: self.stats.batches + other.stats.batches,
                cycles_simulated: self.stats.cycles_simulated + other.stats.cycles_simulated,
                budget_cycles: self.stats.budget_cycles + other.stats.budget_cycles,
                faults_dropped: self.stats.faults_dropped + other.stats.faults_dropped,
                wall_seconds: self.stats.wall_seconds + other.stats.wall_seconds,
                threads: self.stats.threads.max(other.stats.threads),
                latency,
                workers,
                profile,
                engine: if self.stats.engine == other.stats.engine {
                    self.stats.engine
                } else {
                    "mixed"
                },
                lanes: self.stats.lanes.max(other.stats.lanes),
            },
        }
    }
}

/// Simulate one batch of ≤ 63 faults: inject, reset, run until the cycle
/// budget is spent or every fault is dropped. Writes outcomes into `out`
/// (parallel to `batch`) and returns the number of cycles simulated.
///
/// The simulator state is fully rebuilt ([`ParallelSim::reset_state`]),
/// so the outcome depends only on `batch` and the testbench stimulus —
/// never on previous batches. This is what lets the parallel runner
/// schedule batches in any order and still match the serial runner bit
/// for bit.
fn run_batch(
    sim: &mut ParallelSim,
    tb: &mut dyn Testbench,
    batch: &[Fault],
    budget: u64,
    out: &mut [Detection],
    profiler: &Profiler,
) -> u64 {
    {
        let _patch = profiler.scope(ProfilePhase::Patch);
        sim.clear_faults();
        for (k, &f) in batch.iter().enumerate() {
            sim.inject(f, k + 1);
        }
    }
    {
        let _reset = profiler.scope(ProfilePhase::Reset);
        sim.reset_state();
        tb.begin(sim);
    }
    let active: u64 = if batch.len() == 63 {
        !1 // lanes 1..=63
    } else {
        ((1u64 << batch.len()) - 1) << 1
    };
    let mut detected = 0u64;
    for cycle in 0..budget {
        let diff = tb.step(sim, cycle);
        let newly = diff & active & !detected;
        if newly != 0 {
            let mut rem = newly;
            while rem != 0 {
                let lane = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                out[lane - 1] = Detection::DetectedAt(cycle);
            }
            detected |= newly;
            if detected == active {
                return cycle + 1; // every fault in the batch dropped
            }
        }
    }
    budget
}

/// Whether per-batch observability events (and therefore batch wall
/// timing) are wanted: either sink active. Results stay bit-identical
/// regardless — the timing never feeds back into simulation.
fn batch_events_on(hooks: &CampaignHooks) -> bool {
    hooks.tracer.enabled() || hooks.events.is_some()
}

/// Emit the `campaign_begin` event shared by all runners to the tracer
/// and the live event bus.
#[allow(clippy::too_many_arguments)]
fn trace_campaign_begin(
    hooks: &CampaignHooks,
    mode: &str,
    g: SimStats,
    faults: &FaultList,
    budget: u64,
    threads: usize,
    lanes: usize,
) {
    if !batch_events_on(hooks) {
        return;
    }
    let fields = [
        ("mode", Value::String(mode.to_string())),
        ("faults", Value::U64(faults.len() as u64)),
        ("batches", Value::U64(batch_count_lanes(faults, lanes))),
        ("lanes", Value::U64(lanes as u64)),
        ("budget", Value::U64(budget)),
        ("threads", Value::U64(threads as u64)),
        ("nets", Value::U64(g.nets as u64)),
        ("gates", Value::U64(g.gates as u64)),
        ("dffs", Value::U64(g.dffs as u64)),
        ("segments", Value::U64(g.segments as u64)),
    ];
    if hooks.tracer.enabled() {
        hooks.tracer.event("campaign_begin", &fields);
    }
    if let Some(bus) = &hooks.events {
        bus.publish("campaign_begin", &fields);
    }
}

/// Emit the per-batch event (all runners; the tracer also stamps the
/// emitting thread's id). `dur_us` is the batch's wall time, measured
/// only when some sink is listening — it lets the trace exporter draw
/// batches as slices instead of instants.
fn trace_batch(
    hooks: &CampaignHooks,
    batch: usize,
    worker: usize,
    out: &[Detection],
    cycles: u64,
    dur_us: Option<u64>,
) {
    if !batch_events_on(hooks) {
        return;
    }
    let detected = out.iter().filter(|d| d.is_detected()).count();
    let mut fields = vec![
        ("batch", Value::U64(batch as u64)),
        ("worker", Value::U64(worker as u64)),
        ("faults", Value::U64(out.len() as u64)),
        ("cycles", Value::U64(cycles)),
        ("detected", Value::U64(detected as u64)),
    ];
    if let Some(d) = dur_us {
        fields.push(("dur_us", Value::U64(d)));
    }
    if hooks.tracer.enabled() {
        hooks.tracer.event("batch", &fields);
    }
    if let Some(bus) = &hooks.events {
        bus.publish("batch", &fields);
    }
}

/// Emit the `campaign_end` event and flush the tracer sink.
fn trace_campaign_end(hooks: &CampaignHooks, stats: &CampaignStats) {
    if !batch_events_on(hooks) {
        return;
    }
    let fields = [
        ("cycles", Value::U64(stats.cycles_simulated)),
        ("budget_cycles", Value::U64(stats.budget_cycles)),
        ("dropped", Value::U64(stats.faults_dropped)),
        ("wall_us", Value::U64((stats.wall_seconds * 1e6) as u64)),
    ];
    if hooks.tracer.enabled() {
        hooks.tracer.event("campaign_end", &fields);
        hooks.tracer.flush();
    }
    if let Some(bus) = &hooks.events {
        bus.publish("campaign_end", &fields);
    }
}

/// Run a campaign: simulate every fault in `faults` against the stimulus
/// of `tb`, in batches of 63 plus the lane-0 reference.
///
/// `sim` must have been built over the same netlist the faults refer to;
/// it is reused across batches (cheaper than reallocating).
pub fn run(sim: &mut ParallelSim, faults: &FaultList, tb: &mut dyn Testbench) -> CampaignResult {
    run_with(sim, faults, tb, &CampaignHooks::none())
}

/// [`run`] with observability hooks: emits `campaign_begin`, one `batch`
/// event per batch, and `campaign_end` to `hooks.tracer`, and ticks
/// `hooks.progress` once per batch. Detections are identical to [`run`]
/// — the hooks never touch simulation state.
pub fn run_with(
    sim: &mut ParallelSim,
    faults: &FaultList,
    tb: &mut dyn Testbench,
    hooks: &CampaignHooks,
) -> CampaignResult {
    let t0 = Instant::now();
    let profile_start = hooks.profiler.snapshot();
    let counters = hooks.metrics.as_ref().map(BatchCounters::of);
    let mut detections = vec![Detection::Undetected; faults.len()];
    let budget = tb.cycles();
    trace_campaign_begin(hooks, "serial", sim.stats(), faults, budget, 1, 64);
    let timing = batch_events_on(hooks);
    let mut cycles = 0u64;
    let mut batches = 0u64;
    for (b, (batch, out)) in faults
        .faults
        .chunks(63)
        .zip(detections.chunks_mut(63))
        .enumerate()
    {
        let tb0 = timing.then(Instant::now);
        let c = run_batch(sim, tb, batch, budget, out, &hooks.profiler);
        cycles += c;
        batches += 1;
        trace_batch(hooks, b, 0, out, c, tb0.map(|t| t.elapsed().as_micros() as u64));
        if let Some(p) = &hooks.progress {
            p.inc(1);
        }
        if let Some(ctr) = &counters {
            ctr.batches.inc(1);
            ctr.cycles.inc(c);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let dropped = detections.iter().filter(|d| d.is_detected()).count() as u64;
    let stats = CampaignStats {
        batches,
        cycles_simulated: cycles,
        budget_cycles: batches * budget,
        faults_dropped: dropped,
        wall_seconds: wall,
        threads: 1,
        latency: latency_of(&detections),
        workers: vec![WorkerStats {
            worker: 0,
            batches,
            cycles,
            wall_seconds: wall,
            lanes: 64,
        }],
        profile: hooks.profiler.snapshot().since(&profile_start),
        engine: "interp",
        lanes: 64,
    };
    trace_campaign_end(hooks, &stats);
    if let Some(p) = &hooks.progress {
        p.finish();
    }
    if let Some(reg) = &hooks.metrics {
        publish_run_metrics(reg, &stats);
    }
    CampaignResult {
        faults: faults.clone(),
        detections,
        stats,
    }
}

/// Creates one testbench instance per worker thread of a parallel
/// campaign. Blanket-implemented for `Fn() -> T` closures, so
/// `&|| SelfTestBench::new(...)` is a factory.
///
/// Every instance must produce the same stimulus (same program, same
/// cycle budget) — the determinism guarantee of [`run_parallel`] assumes
/// batches are interchangeable across workers.
pub trait TestbenchFactory: Sync {
    /// The testbench type produced.
    type Bench: Testbench;

    /// Create a fresh testbench (called once per worker thread).
    fn create(&self) -> Self::Bench;
}

impl<T: Testbench, F: Fn() -> T + Sync> TestbenchFactory for F {
    type Bench = T;

    fn create(&self) -> T {
        self()
    }
}

/// Number of worker threads a campaign should use: the `SBST_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    match std::env::var("SBST_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Run a campaign across `threads` worker threads (0 = use
/// [`default_threads`]). Each worker owns a clone of `proto` and its own
/// testbench from `factory`, and pulls 63-fault batches off a shared
/// atomic cursor — dynamic load balancing, because fault dropping makes
/// batch runtimes uneven. Detections are written into disjoint per-batch
/// slices of one result vector, so the merged [`CampaignResult`] is
/// bit-identical to [`run`] regardless of thread count or scheduling.
pub fn run_parallel<F: TestbenchFactory>(
    proto: &ParallelSim,
    faults: &FaultList,
    factory: &F,
    threads: usize,
) -> CampaignResult {
    run_parallel_with(proto, faults, factory, threads, &CampaignHooks::none())
}

/// [`run_parallel`] with observability hooks. Trace events carry the
/// emitting worker's thread id; `hooks.progress` is ticked once per
/// completed batch across all workers. The hooks never touch simulation
/// state, so detections remain bit-identical to the serial runner.
pub fn run_parallel_with<F: TestbenchFactory>(
    proto: &ParallelSim,
    faults: &FaultList,
    factory: &F,
    threads: usize,
    hooks: &CampaignHooks,
) -> CampaignResult {
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let batches: Vec<&[Fault]> = faults.faults.chunks(63).collect();
    let workers = threads.min(batches.len()).max(1);
    if workers == 1 {
        let mut sim = proto.clone();
        let mut tb = factory.create();
        return run_with(&mut sim, faults, &mut tb, hooks);
    }

    let t0 = Instant::now();
    let profile_start = hooks.profiler.snapshot();
    let budget = factory.create().cycles();
    trace_campaign_begin(hooks, "parallel", proto.stats(), faults, budget, workers, 64);
    let timing = batch_events_on(hooks);
    let mut detections = vec![Detection::Undetected; faults.len()];
    // One uncontended Mutex per batch slice: a worker locks only the
    // batches the cursor hands it, so slices stay disjoint and safe.
    let slots: Vec<Mutex<&mut [Detection]>> =
        detections.chunks_mut(63).map(Mutex::new).collect();
    let cursor = CachePadded(AtomicUsize::new(0));
    let (batches_ref, slots_ref, cursor_ref) = (&batches, &slots, &cursor);
    let mut worker_stats = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (batches, slots, cursor) = (batches_ref, slots_ref, cursor_ref);
                s.spawn(move || {
                    let tw = Instant::now();
                    let mut sim = proto.clone();
                    let mut tb = factory.create();
                    // Per-worker handle clones share the same atomic
                    // accumulators, so updates merge for free.
                    let counters = hooks.metrics.as_ref().map(BatchCounters::of);
                    let mut cycles = 0u64;
                    let mut done = 0u64;
                    loop {
                        let b = cursor.0.fetch_add(1, Ordering::Relaxed);
                        if b >= batches.len() {
                            break;
                        }
                        let mut out = slots[b].lock().expect("batch slot poisoned");
                        let tb0 = timing.then(Instant::now);
                        let c = run_batch(
                            &mut sim,
                            &mut tb,
                            batches[b],
                            budget,
                            &mut out,
                            &hooks.profiler,
                        );
                        cycles += c;
                        done += 1;
                        trace_batch(
                            hooks,
                            b,
                            w,
                            &out,
                            c,
                            tb0.map(|t| t.elapsed().as_micros() as u64),
                        );
                        if let Some(p) = &hooks.progress {
                            p.inc(1);
                        }
                        if let Some(ctr) = &counters {
                            ctr.batches.inc(1);
                            ctr.cycles.inc(c);
                        }
                    }
                    WorkerStats {
                        worker: w,
                        batches: done,
                        cycles,
                        wall_seconds: tw.elapsed().as_secs_f64(),
                        lanes: 64,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect::<Vec<_>>()
    });
    drop(slots);
    worker_stats.sort_by_key(|w| w.worker);
    let cycles_total: u64 = worker_stats.iter().map(|w| w.cycles).sum();
    let dropped = detections.iter().filter(|d| d.is_detected()).count() as u64;
    let stats = CampaignStats {
        batches: batches.len() as u64,
        cycles_simulated: cycles_total,
        budget_cycles: batches.len() as u64 * budget,
        faults_dropped: dropped,
        wall_seconds: t0.elapsed().as_secs_f64(),
        threads: workers,
        latency: latency_of(&detections),
        workers: worker_stats,
        profile: hooks.profiler.snapshot().since(&profile_start),
        engine: "interp",
        lanes: 64,
    };
    trace_campaign_end(hooks, &stats);
    if let Some(p) = &hooks.progress {
        p.finish();
    }
    if let Some(reg) = &hooks.metrics {
        publish_run_metrics(reg, &stats);
    }
    CampaignResult {
        faults: faults.clone(),
        detections,
        stats,
    }
}

/// A [`Testbench`] that applies a fixed sequence of input vectors
/// (broadcast to all lanes) and observes every primary output each cycle.
/// Suitable for grading component-level test sets, combinational or
/// sequential.
pub struct VectorBench<'a> {
    netlist: &'a Netlist,
    /// Each vector is a list of `(port, value)` pairs applied before the
    /// cycle's evaluation.
    vectors: &'a [Vec<(&'a str, u64)>],
    output_nets: Vec<netlist::Net>,
}

impl<'a> VectorBench<'a> {
    /// Create a bench over all output ports of `netlist`.
    pub fn new(netlist: &'a Netlist, vectors: &'a [Vec<(&'a str, u64)>]) -> Self {
        let output_nets = netlist
            .ports()
            .filter(|(_, d, _)| matches!(d, netlist::PortDir::Output))
            .flat_map(|(_, _, nets)| nets.iter().copied())
            .collect();
        VectorBench {
            netlist,
            vectors,
            output_nets,
        }
    }
}

impl Testbench for VectorBench<'_> {
    fn begin(&mut self, _sim: &mut ParallelSim) {}

    fn step(&mut self, sim: &mut ParallelSim, cycle: u64) -> u64 {
        for &(port, value) in &self.vectors[cycle as usize] {
            sim.set_port(self.netlist, port, value);
        }
        sim.eval_all();
        let diff = sim.diff_vs_lane0(&self.output_nets);
        sim.clock();
        diff
    }

    fn cycles(&self) -> u64 {
        self.vectors.len() as u64
    }
}

/// Convenience wrapper: extract-or-take faults, run `vectors` through a
/// fresh simulator, return the result.
pub fn run_vectors(
    netlist: &Netlist,
    faults: &FaultList,
    vectors: &[Vec<(&str, u64)>],
) -> CampaignResult {
    let mut sim = ParallelSim::new(netlist);
    let mut tb = VectorBench::new(netlist, vectors);
    run(&mut sim, faults, &mut tb)
}

/// Stimulus source for the compiled multi-word engine — the
/// [`Testbench`] contract widened to lane blocks: `step` fills `diff`
/// (one word per 64 lanes) with the lanes that diverged from lane 0
/// this cycle.
pub trait WideTestbench {
    /// Prepare for a fresh batch (after injection and reset).
    fn begin(&mut self, sim: &mut WideSim);

    /// Execute one clock cycle, OR-ing diverged lanes into `diff`
    /// (length `sim.lane_words()`, zeroed by the caller).
    fn step(&mut self, sim: &mut WideSim, cycle: u64, diff: &mut [u64]);

    /// Total number of cycles to run per batch.
    fn cycles(&self) -> u64;
}

/// Creates one [`WideTestbench`] per worker thread.
/// Blanket-implemented for `Fn() -> T` closures.
pub trait WideTestbenchFactory: Sync {
    /// The testbench type produced.
    type Bench: WideTestbench;

    /// Create a fresh testbench (called once per worker thread).
    fn create(&self) -> Self::Bench;
}

impl<T: WideTestbench, F: Fn() -> T + Sync> WideTestbenchFactory for F {
    type Bench = T;

    fn create(&self) -> T {
        self()
    }
}

/// [`run_batch`] for the compiled engine: one batch of up to
/// `lanes - 1` faults, detection bookkeeping per lane word.
fn run_batch_wide(
    sim: &mut WideSim,
    tb: &mut dyn WideTestbench,
    batch: &[Fault],
    budget: u64,
    out: &mut [Detection],
    profiler: &Profiler,
) -> u64 {
    {
        let _patch = profiler.scope(ProfilePhase::Patch);
        sim.clear_faults();
        for (k, &f) in batch.iter().enumerate() {
            sim.inject(f, k + 1);
        }
    }
    {
        let _reset = profiler.scope(ProfilePhase::Reset);
        sim.reset_state();
        tb.begin(sim);
    }
    let w = sim.lane_words();
    let mut active = [0u64; crate::wide::MAX_LANE_WORDS];
    for k in 0..batch.len() {
        let lane = k + 1;
        active[lane >> 6] |= 1u64 << (lane & 63);
    }
    let mut detected = [0u64; crate::wide::MAX_LANE_WORDS];
    let mut diff = [0u64; crate::wide::MAX_LANE_WORDS];
    for cycle in 0..budget {
        diff[..w].fill(0);
        tb.step(sim, cycle, &mut diff[..w]);
        let mut all_done = true;
        for t in 0..w {
            let newly = diff[t] & active[t] & !detected[t];
            if newly != 0 {
                let mut rem = newly;
                while rem != 0 {
                    let lane = (t << 6) + rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    out[lane - 1] = Detection::DetectedAt(cycle);
                }
                detected[t] |= newly;
            }
            all_done &= detected[t] == active[t];
        }
        if all_done {
            return cycle + 1; // every fault in the batch dropped
        }
    }
    budget
}

/// Serial campaign on the compiled engine: [`run`]'s contract at
/// `sim.lanes()` faults-plus-reference per batch. Detections are
/// bit-identical to the interpreted runner for every fault.
pub fn run_wide(
    sim: &mut WideSim,
    faults: &FaultList,
    tb: &mut dyn WideTestbench,
) -> CampaignResult {
    run_wide_with(sim, faults, tb, &CampaignHooks::none())
}

/// [`run_wide`] with observability hooks (same semantics as
/// [`run_with`]).
pub fn run_wide_with(
    sim: &mut WideSim,
    faults: &FaultList,
    tb: &mut dyn WideTestbench,
    hooks: &CampaignHooks,
) -> CampaignResult {
    let t0 = Instant::now();
    let profile_start = hooks.profiler.snapshot();
    let counters = hooks.metrics.as_ref().map(BatchCounters::of);
    let lanes = sim.lanes();
    let chunk = lanes - 1;
    let mut detections = vec![Detection::Undetected; faults.len()];
    let budget = tb.cycles();
    trace_campaign_begin(hooks, "serial", sim.stats(), faults, budget, 1, lanes);
    let timing = batch_events_on(hooks);
    let mut cycles = 0u64;
    let mut batches = 0u64;
    for (b, (batch, out)) in faults
        .faults
        .chunks(chunk)
        .zip(detections.chunks_mut(chunk))
        .enumerate()
    {
        let tb0 = timing.then(Instant::now);
        let c = run_batch_wide(sim, tb, batch, budget, out, &hooks.profiler);
        cycles += c;
        batches += 1;
        trace_batch(hooks, b, 0, out, c, tb0.map(|t| t.elapsed().as_micros() as u64));
        if let Some(p) = &hooks.progress {
            p.inc(1);
        }
        if let Some(ctr) = &counters {
            ctr.batches.inc(1);
            ctr.cycles.inc(c);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let dropped = detections.iter().filter(|d| d.is_detected()).count() as u64;
    let stats = CampaignStats {
        batches,
        cycles_simulated: cycles,
        budget_cycles: batches * budget,
        faults_dropped: dropped,
        wall_seconds: wall,
        threads: 1,
        latency: latency_of(&detections),
        workers: vec![WorkerStats {
            worker: 0,
            batches,
            cycles,
            wall_seconds: wall,
            lanes: lanes as u64,
        }],
        profile: hooks.profiler.snapshot().since(&profile_start),
        engine: "compiled",
        lanes: lanes as u64,
    };
    trace_campaign_end(hooks, &stats);
    if let Some(p) = &hooks.progress {
        p.finish();
    }
    if let Some(reg) = &hooks.metrics {
        publish_run_metrics(reg, &stats);
    }
    CampaignResult {
        faults: faults.clone(),
        detections,
        stats,
    }
}

/// Parallel campaign on the compiled engine. Each worker clones `proto`
/// — per-worker lane state with a shared, immutable compiled kernel
/// (`Arc`), i.e. kernel affinity without duplicating the lowered
/// program — and pulls `lanes - 1`-fault batches off a cache-padded
/// atomic cursor. Bit-identical to [`run_wide`] at any thread count.
pub fn run_parallel_wide<F: WideTestbenchFactory>(
    proto: &WideSim,
    faults: &FaultList,
    factory: &F,
    threads: usize,
) -> CampaignResult {
    run_parallel_wide_with(proto, faults, factory, threads, &CampaignHooks::none())
}

/// [`run_parallel_wide`] with observability hooks (same semantics as
/// [`run_parallel_with`]).
pub fn run_parallel_wide_with<F: WideTestbenchFactory>(
    proto: &WideSim,
    faults: &FaultList,
    factory: &F,
    threads: usize,
    hooks: &CampaignHooks,
) -> CampaignResult {
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let lanes = proto.lanes();
    let chunk = lanes - 1;
    let batches: Vec<&[Fault]> = faults.faults.chunks(chunk).collect();
    let workers = threads.min(batches.len()).max(1);
    if workers == 1 {
        let mut sim = proto.clone();
        let mut tb = factory.create();
        return run_wide_with(&mut sim, faults, &mut tb, hooks);
    }

    let t0 = Instant::now();
    let profile_start = hooks.profiler.snapshot();
    let budget = factory.create().cycles();
    trace_campaign_begin(hooks, "parallel", proto.stats(), faults, budget, workers, lanes);
    let timing = batch_events_on(hooks);
    let mut detections = vec![Detection::Undetected; faults.len()];
    let slots: Vec<Mutex<&mut [Detection]>> =
        detections.chunks_mut(chunk).map(Mutex::new).collect();
    let cursor = CachePadded(AtomicUsize::new(0));
    let (batches_ref, slots_ref, cursor_ref) = (&batches, &slots, &cursor);
    let mut worker_stats = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (batches, slots, cursor) = (batches_ref, slots_ref, cursor_ref);
                s.spawn(move || {
                    let tw = Instant::now();
                    let mut sim = proto.clone();
                    let mut tb = factory.create();
                    let counters = hooks.metrics.as_ref().map(BatchCounters::of);
                    let mut cycles = 0u64;
                    let mut done = 0u64;
                    loop {
                        let b = cursor.0.fetch_add(1, Ordering::Relaxed);
                        if b >= batches.len() {
                            break;
                        }
                        let mut out = slots[b].lock().expect("batch slot poisoned");
                        let tb0 = timing.then(Instant::now);
                        let c = run_batch_wide(
                            &mut sim,
                            &mut tb,
                            batches[b],
                            budget,
                            &mut out,
                            &hooks.profiler,
                        );
                        cycles += c;
                        done += 1;
                        trace_batch(
                            hooks,
                            b,
                            w,
                            &out,
                            c,
                            tb0.map(|t| t.elapsed().as_micros() as u64),
                        );
                        if let Some(p) = &hooks.progress {
                            p.inc(1);
                        }
                        if let Some(ctr) = &counters {
                            ctr.batches.inc(1);
                            ctr.cycles.inc(c);
                        }
                    }
                    WorkerStats {
                        worker: w,
                        batches: done,
                        cycles,
                        wall_seconds: tw.elapsed().as_secs_f64(),
                        lanes: lanes as u64,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect::<Vec<_>>()
    });
    drop(slots);
    worker_stats.sort_by_key(|w| w.worker);
    let cycles_total: u64 = worker_stats.iter().map(|w| w.cycles).sum();
    let dropped = detections.iter().filter(|d| d.is_detected()).count() as u64;
    let stats = CampaignStats {
        batches: batches.len() as u64,
        cycles_simulated: cycles_total,
        budget_cycles: batches.len() as u64 * budget,
        faults_dropped: dropped,
        wall_seconds: t0.elapsed().as_secs_f64(),
        threads: workers,
        latency: latency_of(&detections),
        workers: worker_stats,
        profile: hooks.profiler.snapshot().since(&profile_start),
        engine: "compiled",
        lanes: lanes as u64,
    };
    trace_campaign_end(hooks, &stats);
    if let Some(p) = &hooks.progress {
        p.finish();
    }
    if let Some(reg) = &hooks.metrics {
        publish_run_metrics(reg, &stats);
    }
    CampaignResult {
        faults: faults.clone(),
        detections,
        stats,
    }
}

/// [`VectorBench`] for the compiled engine: fixed vectors broadcast to
/// all lanes, every primary output observed each cycle.
pub struct WideVectorBench<'a> {
    netlist: &'a Netlist,
    vectors: &'a [Vec<(&'a str, u64)>],
    output_nets: Vec<netlist::Net>,
}

impl<'a> WideVectorBench<'a> {
    /// Create a bench over all output ports of `netlist`.
    pub fn new(netlist: &'a Netlist, vectors: &'a [Vec<(&'a str, u64)>]) -> Self {
        let output_nets = netlist
            .ports()
            .filter(|(_, d, _)| matches!(d, netlist::PortDir::Output))
            .flat_map(|(_, _, nets)| nets.iter().copied())
            .collect();
        WideVectorBench {
            netlist,
            vectors,
            output_nets,
        }
    }
}

impl WideTestbench for WideVectorBench<'_> {
    fn begin(&mut self, _sim: &mut WideSim) {}

    fn step(&mut self, sim: &mut WideSim, cycle: u64, diff: &mut [u64]) {
        for &(port, value) in &self.vectors[cycle as usize] {
            sim.set_port(self.netlist, port, value);
        }
        sim.eval_all();
        sim.diff_vs_lane0(&self.output_nets, diff);
        sim.clock();
    }

    fn cycles(&self) -> u64 {
        self.vectors.len() as u64
    }
}

/// [`run_vectors`] on the compiled engine at a chosen lane width.
pub fn run_vectors_wide(
    netlist: &Netlist,
    faults: &FaultList,
    vectors: &[Vec<(&str, u64)>],
    lane_words: usize,
    gating: bool,
) -> CampaignResult {
    let segments = vec![netlist.topo_order().to_vec()];
    let kernel = crate::kernel::compile_cached(netlist, &segments);
    let mut sim = WideSim::new(kernel, lane_words, gating);
    let mut tb = WideVectorBench::new(netlist, vectors);
    run_wide(&mut sim, faults, &mut tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultList;
    use netlist::{synth, NetlistBuilder};

    /// Exhaustive patterns on a 4-bit adder must detect all detectable
    /// faults (the structure is fully testable).
    #[test]
    fn exhaustive_adder_reaches_full_coverage() {
        let mut b = NetlistBuilder::new("add4");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let cin = b.input("cin");
        let r = synth::add_ripple(&mut b, &a, &c, cin);
        b.outputs("sum", &r.sum);
        b.output("cout", r.carry_out);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let vectors: Vec<Vec<(&str, u64)>> = (0..512u64)
            .map(|v| {
                vec![
                    ("a", v & 0xF),
                    ("b", (v >> 4) & 0xF),
                    ("cin", (v >> 8) & 1),
                ]
            })
            .collect();
        let res = run_vectors(&nl, &faults, &vectors);
        // carry_into_msb is an internal-only output here (unconnected), so
        // everything observable must be caught.
        assert!(
            res.coverage() > 0.999,
            "coverage {} too low",
            res.coverage()
        );
    }

    /// A single all-zero vector detects only a few faults; coverage must be
    /// strictly between 0 and 1 and detection cycles recorded as cycle 0.
    #[test]
    fn single_vector_partial_coverage() {
        let mut b = NetlistBuilder::new("and8");
        let a = b.inputs("a", 8);
        let c = b.inputs("b", 8);
        let y = b.and_word(&a, &c);
        b.outputs("y", &y);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let vectors = vec![vec![("a", 0u64), ("b", 0u64)]];
        let res = run_vectors(&nl, &faults, &vectors);
        let cov = res.coverage();
        assert!(cov > 0.0 && cov < 1.0, "cov = {cov}");
        for d in &res.detections {
            if let Detection::DetectedAt(c) = d {
                assert_eq!(*c, 0);
            }
        }
    }

    /// Sequential detection: a fault on a counter's feedback shows up only
    /// after enough cycles.
    #[test]
    fn sequential_fault_detection_cycles() {
        let mut b = NetlistBuilder::new("ctr");
        let (q, slots) = b.dff_word_later(3, 0);
        let (next, _) = synth::inc(&mut b, &q);
        b.dff_word_set(slots, &next);
        b.outputs("q", &q);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        // No inputs; just let it count for 16 cycles.
        let vectors: Vec<Vec<(&str, u64)>> = (0..16).map(|_| vec![]).collect();
        let res = run_vectors(&nl, &faults, &vectors);
        // The dropped final-carry cone and the tie-high cell are
        // unobservable, so full coverage is impossible; ~0.8 is the real
        // detectable share here.
        assert!(res.coverage() > 0.75, "coverage {}", res.coverage());
        // The MSB-affecting faults can only be seen after several cycles.
        assert!(res.last_detection_cycle().unwrap() >= 3);
    }

    #[test]
    fn merge_unions_detections() {
        let mut b = NetlistBuilder::new("xor1");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.xor2(a, c);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let v1 = vec![vec![("a", 0u64), ("b", 0u64)]];
        let v2 = vec![vec![("a", 1u64), ("b", 0u64)], vec![("a", 0), ("b", 1)]];
        let r1 = run_vectors(&nl, &faults, &v1);
        let r2 = run_vectors(&nl, &faults, &v2);
        let merged = r1.merge(&r2);
        assert!(merged.coverage() >= r1.coverage().max(r2.coverage()));
        // XOR with 3 of 4 input combinations detects everything
        // observable.
        assert!(merged.coverage() > 0.99, "cov {}", merged.coverage());
    }

    /// The parallel runner must match the serial runner bit for bit at
    /// every thread count, including partial detection (too few vectors
    /// to catch everything).
    #[test]
    fn parallel_matches_serial_exactly() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 24);
        let c = b.inputs("b", 24);
        let y = b.xor_word(&a, &c);
        let q = b.dff_word(&y, 0);
        let z = b.and_word(&q, &a);
        b.outputs("z", &z);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        assert!(faults.len() > 126, "need 3+ batches");
        let vectors: Vec<Vec<(&str, u64)>> = vec![
            vec![("a", 0xAAAAAA), ("b", 0x555555)],
            vec![("a", 0xFFFFFF), ("b", 0)],
            vec![("a", 0x123456), ("b", 0x654321)],
        ];
        let serial = run_vectors(&nl, &faults, &vectors);
        assert_eq!(serial.stats.batches, faults.len().div_ceil(63) as u64);
        assert!(serial.stats.cycles_simulated > 0);
        for threads in [1usize, 2, 4] {
            let proto = ParallelSim::new(&nl);
            let factory = || VectorBench::new(&nl, &vectors);
            let par = run_parallel(&proto, &faults, &factory, threads);
            assert_eq!(
                par.detections, serial.detections,
                "thread count {threads} changed the result"
            );
            assert_eq!(par.stats.batches, serial.stats.batches);
            assert_eq!(par.stats.cycles_simulated, serial.stats.cycles_simulated);
        }
    }

    /// Zero (or negative) wall time must yield 0.0 throughput, never
    /// inf/NaN — sub-millisecond unit-test campaigns hit this.
    #[test]
    fn zero_duration_throughput_is_zero_not_inf() {
        let stats = CampaignStats {
            cycles_simulated: 1_000_000,
            wall_seconds: 0.0,
            ..CampaignStats::default()
        };
        assert_eq!(stats.mlane_cycles_per_sec(), 0.0);
        let stats = CampaignStats {
            cycles_simulated: 1_000_000,
            wall_seconds: -1.0,
            ..CampaignStats::default()
        };
        assert_eq!(stats.mlane_cycles_per_sec(), 0.0);
        let w = WorkerStats {
            worker: 0,
            batches: 1,
            cycles: 1_000_000,
            wall_seconds: 0.0,
            lanes: 64,
        };
        assert_eq!(w.mlane_cycles_per_sec(), 0.0);
        assert!(w.mlane_cycles_per_sec().is_finite());
    }

    /// The compiled engine must agree with the interpreted reference
    /// fault for fault at every lane width, gated or not, serial or
    /// parallel — the bit-identical acceptance criterion at the
    /// vector-bench level.
    #[test]
    fn wide_runners_match_interpreted_detections() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 24);
        let c = b.inputs("b", 24);
        let y = b.xor_word(&a, &c);
        let q = b.dff_word(&y, 0);
        let z = b.and_word(&q, &a);
        b.outputs("z", &z);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        assert!(faults.len() > 126, "need multiple batches at 64 lanes");
        let vectors: Vec<Vec<(&str, u64)>> = vec![
            vec![("a", 0xAAAAAA), ("b", 0x555555)],
            vec![("a", 0xFFFFFF), ("b", 0)],
            vec![("a", 0x123456), ("b", 0x654321)],
        ];
        let reference = run_vectors(&nl, &faults, &vectors);
        for lane_words in [1usize, 2, 4, 8] {
            for gating in [false, true] {
                let wide = run_vectors_wide(&nl, &faults, &vectors, lane_words, gating);
                assert_eq!(
                    wide.detections, reference.detections,
                    "compiled({} lanes, gating={gating}) diverged from interp",
                    64 * lane_words
                );
                assert_eq!(wide.stats.engine, "compiled");
                assert_eq!(wide.stats.lanes, 64 * lane_words as u64);
                assert_eq!(
                    wide.stats.batches,
                    batch_count_lanes(&faults, 64 * lane_words)
                );
            }
        }
        // Parallel wide matches serial wide and the interp reference.
        let segments = vec![nl.topo_order().to_vec()];
        let kernel = crate::kernel::compile_cached(&nl, &segments);
        for threads in [2usize, 4] {
            let proto = WideSim::new(kernel.clone(), 2, true);
            let factory = || WideVectorBench::new(&nl, &vectors);
            let par = run_parallel_wide(&proto, &faults, &factory, threads);
            assert_eq!(
                par.detections, reference.detections,
                "parallel wide at {threads} threads diverged"
            );
        }
    }

    /// Enabling every hook (profiler + metrics + tracing disabled) must
    /// not change detections, at any thread count: the acceptance
    /// criterion that instrumentation is observation-only.
    #[test]
    fn hooks_do_not_change_results() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 24);
        let c = b.inputs("b", 24);
        let y = b.xor_word(&a, &c);
        let q = b.dff_word(&y, 0);
        let z = b.and_word(&q, &a);
        b.outputs("z", &z);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        let vectors: Vec<Vec<(&str, u64)>> = vec![
            vec![("a", 0xAAAAAA), ("b", 0x555555)],
            vec![("a", 0x123456), ("b", 0x654321)],
        ];
        let plain = run_vectors(&nl, &faults, &vectors);
        let hooks = CampaignHooks {
            profiler: Profiler::new(),
            metrics: Some(MetricRegistry::new()),
            ..CampaignHooks::default()
        };
        for threads in [1usize, 2, 4] {
            let proto = ParallelSim::new(&nl);
            let factory = || VectorBench::new(&nl, &vectors);
            let par = run_parallel_with(&proto, &faults, &factory, threads, &hooks);
            assert_eq!(
                par.detections, plain.detections,
                "hooks changed detections at {threads} threads"
            );
        }
        // The profiler actually saw the batch phases...
        let snap = hooks.profiler.snapshot();
        assert!(snap.count(ProfilePhase::Patch) > 0);
        assert!(snap.count(ProfilePhase::Reset) > 0);
        // ...and the registry accumulated batch counters.
        let reg = hooks.metrics.as_ref().unwrap();
        let text = reg.to_prometheus();
        assert!(text.contains("sbst_batches_total"), "{text}");
        assert!(text.contains("sbst_cycles_total"), "{text}");
        assert!(text.contains("sbst_faults_detected_total"), "{text}");
    }

    /// More than 63 faults exercises multi-batch bookkeeping.
    #[test]
    fn multi_batch_indexing_correct() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 24);
        let c = b.inputs("b", 24);
        let y = b.xor_word(&a, &c);
        b.outputs("y", &y);
        let nl = b.finish().unwrap();
        let faults = FaultList::extract(&nl).collapsed(&nl);
        assert!(faults.len() > 63, "need multiple batches");
        let vectors: Vec<Vec<(&str, u64)>> = vec![
            vec![("a", 0), ("b", 0)],
            vec![("a", 0xFFFFFF), ("b", 0)],
            vec![("a", 0), ("b", 0xFFFFFF)],
        ];
        let res = run_vectors(&nl, &faults, &vectors);
        // XOR with those three vectors tests every bit slice completely.
        assert!(res.coverage() > 0.99, "cov {}", res.coverage());
    }
}
