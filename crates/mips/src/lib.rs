//! MIPS I instruction-set substrate: encoding, assembly, disassembly and a
//! cycle-accurate golden-reference simulator.
//!
//! The paper's processor is the Plasma/MIPS core: "all MIPS I user mode
//! instructions except unaligned load and store operations ... and
//! exceptions", with a 3-stage pipeline. This crate provides everything
//! the self-test flow needs around that ISA:
//!
//! * [`isa`]: the instruction enum, binary encode/decode, register names;
//! * [`asm`]: a two-pass assembler (labels, directives, the pseudo-ops
//!   `li`/`la`/`move`/`nop`/`b`/`beqz`/`bnez`) producing a loadable
//!   [`Program`];
//! * [`disasm`]: textual disassembly;
//! * [`iss`]: the cycle-accurate instruction-set simulator that emits, for
//!   every clock cycle, the bus transaction the pipeline performs — the
//!   golden trace the fault simulator compares faulty machines against.
//!
//! # The microarchitectural contract
//!
//! The gate-level core (crate `plasma`) and the ISS here implement the
//! same Plasma-class 3-stage pipeline, specified as follows. This is the
//! single source of truth; the lock-step co-simulation test in
//! `tests/cosim.rs` enforces it.
//!
//! * **Stages**: fetch (F), decode/execute (EX), and a memory/write-back
//!   slot. The architectural state is `PC` (next fetch address), `IR`/`EPC`
//!   (instruction in EX and its address), a one-entry memory-stage register
//!   set, the register file, `HI`/`LO`, and a 2-state bus FSM `F`/`M`.
//! * **State F** (fetch/execute): the shared bus port fetches at `PC`; EX
//!   executes `IR`. ALU-class results write the register file at the end
//!   of the cycle. A load/store computes its address/stored data into the
//!   memory-stage registers and moves the FSM to `M`. Taken branches load
//!   `PC` with the target (giving exactly one delay slot); otherwise
//!   `PC += 4`. `IR <= fetched word`, `EPC <= PC`.
//! * **State M** (data access): the bus port performs the load/store
//!   prepared in the memory-stage registers; a load's aligned/extended
//!   result writes the register file at the end of the cycle. `PC`, `IR`,
//!   `EPC` hold; EX is suppressed. The FSM returns to `F`.
//! * **Stall**: `mfhi`/`mflo` while the multiply/divide unit is busy holds
//!   `PC`/`IR`/`EPC` and suppresses all EX side effects; the fetch repeats.
//! * **Multiply/divide**: issue takes one EX cycle and starts a 32-step
//!   sequential unit (shift-add multiply, restoring divide on magnitudes
//!   with sign fix-up); `busy` counts down once per clock in any state.
//!   Results are architecturally visible only through `HI`/`LO`.
//! * **Branch delay slot**: one, always executed (MIPS I semantics).
//! * **Arithmetic overflow**: `add`/`addi`/`sub` behave as their unsigned
//!   counterparts — the Plasma core implements no exceptions, and the
//!   paper excludes them.
//! * **Endianness**: little-endian byte lanes (`be[0]` = bits 7:0 at byte
//!   offset 0). The original Plasma is big-endian; the choice does not
//!   affect the methodology and is documented as a substitution in
//!   DESIGN.md.
//! * **Reset**: `PC = 0`, `IR = nop`, FSM = `F`, register file all zero.
//!
//! # Example
//!
//! ```
//! use mips::asm::assemble;
//! use mips::iss::{Iss, Memory};
//!
//! let program = assemble(r#"
//!         li   $t0, 6
//!         li   $t1, 7
//!         mult $t0, $t1
//!         mflo $t2          # stalls until the multiplier finishes
//!         sw   $t2, 0x100($zero)
//! stop:   b stop
//!         nop
//! "#).unwrap();
//!
//! let mut mem = Memory::new(64 * 1024);
//! mem.load_program(&program);
//! let mut cpu = Iss::new();
//! let trace = cpu.run(&mut mem, 200);
//! assert_eq!(mem.read_word(0x100), 42);
//! // The trace records every bus cycle, including the mflo stall refetches.
//! assert!(trace.len() == 200);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod gen;
pub mod isa;
pub mod iss;

pub use asm::{assemble, AsmError, Program};
pub use isa::{Instr, Reg};
pub use iss::{BusCycle, Iss, Memory};
