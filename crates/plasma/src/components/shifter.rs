//! The barrel shifter (`BSH` component, functional class).

use netlist::synth;
use netlist::{Net, NetlistBuilder, Word};

/// Build the 32-bit barrel shifter: `left`/`arith` select the operation,
/// `shamt` the distance.
pub fn shifter(
    b: &mut NetlistBuilder,
    data: &Word,
    shamt: &Word,
    left: Net,
    arith: Net,
) -> Word {
    b.begin_component("BSH");
    let out = synth::barrel_shifter(b, data, shamt, left, arith);
    b.end_component();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::sim::Simulator;

    #[test]
    fn component_tagged_and_functional() {
        let mut b = NetlistBuilder::new("bsh");
        let d = b.inputs("d", 32);
        let sh = b.inputs("sh", 5);
        let left = b.input("left");
        let arith = b.input("arith");
        let out = shifter(&mut b, &d, &sh, left, arith);
        b.outputs("out", &out);
        let nl = b.finish().unwrap();
        assert!(nl.component_by_name("BSH").is_some());
        let mut sim = Simulator::new(&nl);
        sim.set_input_word(&nl, "d", 0xF000_000F);
        sim.set_input_word(&nl, "sh", 4);
        sim.set_input_word(&nl, "left", 0);
        sim.set_input_word(&nl, "arith", 1);
        sim.eval(&nl);
        assert_eq!(sim.output_word(&nl, "out") as u32, 0xFF00_0000u32 | 0x0);
    }
}
