//! Software response compaction (MISR) — an ablation of the paper's
//! store-everything observation model.
//!
//! The paper's routines store every response word to memory, maximizing
//! observability at the cost of response bandwidth. The classic
//! alternative compacts responses in software into a rotating-XOR
//! signature that is stored once per routine. This module provides the
//! compacted variants of the two highest-bandwidth routines (ALU and
//! shifter) plus the software MISR model, so the aliasing/observability
//! trade-off can be measured instead of argued.

use std::fmt::Write as _;

use crate::library;
use crate::routines::Routine;

/// The software MISR step used by the compacted routines:
/// `sig = rotl(sig, 1) ^ response`. Bit-exact model of the emitted
/// assembly.
pub fn misr_step(sig: u32, response: u32) -> u32 {
    sig.rotate_left(1) ^ response
}

fn emit_misr(code: &mut String) {
    let _ = writeln!(code, "        sll  $t8, $s3, 1");
    let _ = writeln!(code, "        srl  $t9, $s3, 31");
    let _ = writeln!(code, "        or   $s3, $t8, $t9");
    let _ = writeln!(code, "        xor  $s3, $s3, $v0");
}

/// The ALU routine with MISR-compacted responses: one store per routine
/// instead of one per operation.
pub fn alu_routine_misr() -> Routine {
    let pairs: Vec<(u32, u32)> = library::adder_pairs()
        .into_iter()
        .chain(library::logic_pairs())
        .collect();
    let mut code = String::new();
    let _ = writeln!(code, "        li   $s3, 0");
    let _ = writeln!(code, "        la   $s0, alum_tab");
    let _ = writeln!(code, "        li   $s1, {}", pairs.len());
    let _ = writeln!(code, "alum_loop:");
    let _ = writeln!(code, "        lw   $a0, 0($s0)");
    let _ = writeln!(code, "        lw   $a1, 4($s0)");
    for op in ["addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"] {
        let _ = writeln!(code, "        {op} $v0, $a0, $a1");
        emit_misr(&mut code);
    }
    let _ = writeln!(code, "        addiu $s0, $s0, 8");
    let _ = writeln!(code, "        addiu $s1, $s1, -1");
    let _ = writeln!(code, "        bnez $s1, alum_loop");
    let _ = writeln!(code, "        nop");
    let _ = writeln!(code, "        sw   $s3, 0($s2)");
    let _ = writeln!(code, "        addiu $s2, $s2, 4");

    let mut tables = String::from("alum_tab:\n");
    for (a, b) in &pairs {
        let _ = writeln!(tables, "        .word 0x{a:08x}, 0x{b:08x}");
    }
    Routine {
        component: "ALU",
        code,
        tables,
        high_code: String::new(),
    }
}

/// The shifter routine with MISR-compacted responses.
pub fn shifter_routine_misr() -> Routine {
    let data = library::shifter_data();
    let mut code = String::new();
    let _ = writeln!(code, "        li   $s3, 0");
    let _ = writeln!(code, "        la   $s0, bshm_tab");
    let _ = writeln!(code, "        li   $s1, {}", data.len());
    let _ = writeln!(code, "bshm_outer:");
    let _ = writeln!(code, "        lw   $a0, 0($s0)");
    let _ = writeln!(code, "        li   $t0, 0");
    let _ = writeln!(code, "bshm_inner:");
    for op in ["sllv", "srlv", "srav"] {
        let _ = writeln!(code, "        {op} $v0, $a0, $t0");
        emit_misr(&mut code);
    }
    let _ = writeln!(code, "        addiu $t0, $t0, 1");
    let _ = writeln!(code, "        sltiu $v1, $t0, 32");
    let _ = writeln!(code, "        bnez $v1, bshm_inner");
    let _ = writeln!(code, "        nop");
    let _ = writeln!(code, "        addiu $s0, $s0, 4");
    let _ = writeln!(code, "        addiu $s1, $s1, -1");
    let _ = writeln!(code, "        bgtz $s1, bshm_outer");
    let _ = writeln!(code, "        nop");
    let _ = writeln!(code, "        sw   $s3, 0($s2)");
    let _ = writeln!(code, "        addiu $s2, $s2, 4");

    let mut tables = String::from("bshm_tab:\n");
    for d in &data {
        let _ = writeln!(tables, "        .word 0x{d:08x}");
    }
    Routine {
        component: "BSH",
        code,
        tables,
        high_code: String::new(),
    }
}

/// Build a standalone MISR-compacted test program (ALU + shifter only —
/// the two highest response-bandwidth routines) for comparison against
/// the store-everything variants of the same routines.
pub fn misr_program() -> Result<crate::phases::SelfTestProgram, mips::asm::AsmError> {
    use crate::routines::{END_MARKER, MAILBOX, RESP_BASE};
    let mut src = String::new();
    src.push_str(&format!("        li   $s2, 0x{RESP_BASE:x}\n"));
    let alu = alu_routine_misr();
    let bsh = shifter_routine_misr();
    src.push_str(&alu.code);
    src.push_str(&bsh.code);
    src.push_str(&format!("        li   $k1, 0x{END_MARKER:x}\n"));
    src.push_str(&format!("        sw   $k1, 0x{MAILBOX:x}($zero)\n"));
    src.push_str("misr_done:\n        b misr_done\n        nop\n");
    src.push_str(&alu.tables);
    src.push_str(&bsh.tables);
    let program = mips::asm::assemble(&src)?;
    Ok(crate::phases::SelfTestProgram {
        phase: crate::phases::Phase::A,
        source: src,
        program,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips::iss::{Iss, Memory};

    #[test]
    fn misr_model_matches_assembly() {
        // Run the MISR program on the ISS and recompute the ALU signature
        // with the software model.
        let st = misr_program().unwrap();
        let mut mem = Memory::new(64 * 1024);
        mem.load_program(&st.program);
        let mut cpu = Iss::new();
        let trace = cpu.run_until_store(
            &mut mem,
            crate::routines::MAILBOX,
            crate::routines::END_MARKER,
            200_000,
        );
        assert!(trace.last().unwrap().we, "must terminate");

        let pairs: Vec<(u32, u32)> = library::adder_pairs()
            .into_iter()
            .chain(library::logic_pairs())
            .collect();
        let mut sig = 0u32;
        for (a, b) in pairs {
            for r in [
                a.wrapping_add(b),
                a.wrapping_sub(b),
                a & b,
                a | b,
                a ^ b,
                !(a | b),
                ((a as i32) < (b as i32)) as u32,
                (a < b) as u32,
            ] {
                sig = misr_step(sig, r);
            }
        }
        assert_eq!(
            mem.read_word(crate::routines::RESP_BASE),
            sig,
            "assembly MISR must equal the model"
        );
    }

    #[test]
    fn misr_program_is_much_smaller_in_responses() {
        let st = misr_program().unwrap();
        let mut mem = Memory::new(64 * 1024);
        mem.load_program(&st.program);
        let mut cpu = Iss::new();
        let trace = cpu.run_until_store(
            &mut mem,
            crate::routines::MAILBOX,
            crate::routines::END_MARKER,
            200_000,
        );
        let stores = trace.iter().filter(|c| c.we).count();
        // Two signature stores plus the end marker.
        assert_eq!(stores, 3, "MISR compaction collapses the response stream");
    }
}
