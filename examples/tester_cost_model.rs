//! The paper's low-cost argument in numbers: test application time =
//! download at the tester's (slow) clock + execution at the core clock.
//!
//! Sweeps tester frequencies and compares the deterministic Phase A+B
//! program against a pseudorandom baseline of similar coverage ambitions.
//!
//! Run with: `cargo run --release --example tester_cost_model`

use baselines::lfsr::LfsrConfig;
use sbst::cost::CostModel;
use sbst::flow::golden_cycles_of;
use sbst::phases::{build_program, Phase};

fn main() {
    let det = build_program(Phase::B).expect("assembles");
    let det_cycles = sbst::flow::golden_cycles(&det);
    let det_words = det.size_words();

    let pr = baselines::lfsr::build_program(&LfsrConfig::default()).expect("assembles");
    let pr_cycles = golden_cycles_of(&pr.program);
    let pr_words = pr.program.size_download_words();

    println!(
        "deterministic Phase A+B: {det_words} words, {det_cycles} cycles  (~92% stuck-at coverage)"
    );
    println!(
        "pseudorandom LFSR SBST:  {pr_words} words, {pr_cycles} cycles  (~61% coverage — its plateau; \
         +{} bytes of on-chip pattern buffer)\n",
        pr.buffer_bytes
    );

    println!(
        "{:>12} {:>16} {:>16}",
        "tester MHz", "deterministic us", "pseudorandom us"
    );
    for tester_mhz in [1.0, 5.0, 10.0, 25.0, 66.0] {
        let m = CostModel {
            tester_mhz,
            cpu_mhz: 66.0,
        };
        let d = m.cost(det_words, det_cycles);
        let p = m.cost(pr_words, pr_cycles);
        println!(
            "{:>12} {:>16.1} {:>16.1}",
            tester_mhz, d.total_us, p.total_us
        );
    }
    println!(
        "\nthe raw times are close — but they buy very different things: the\n\
         pseudorandom run is stuck at ~61% coverage no matter how many more\n\
         patterns are expanded (see `tables --table prcomp`), while the\n\
         deterministic program reaches ~92%. at equal coverage ambitions the\n\
         pseudorandom approach never catches up at any tester speed, and it\n\
         additionally occupies an on-chip pattern buffer."
    );
}
