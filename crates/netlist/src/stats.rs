//! Structural statistics: logic depth, fanout profile, and a unit-delay
//! timing estimate — the figures a synthesis report would print next to
//! the gate counts of the paper's Table 3.

use crate::netlist::Netlist;

/// Structural report of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of flip-flops.
    pub dffs: usize,
    /// Number of nets.
    pub nets: usize,
    /// Maximum combinational depth in gate levels (register-to-register
    /// or port-to-port).
    pub depth: usize,
    /// Maximum fanout of any net.
    pub max_fanout: u32,
    /// Mean fanout over driven nets.
    pub mean_fanout: f64,
    /// NAND2-equivalent area.
    pub nand2_equiv: f64,
}

impl NetlistStats {
    /// Compute the report.
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let mut level = vec![0usize; netlist.num_nets()];
        let mut depth = 0usize;
        for &gi in netlist.topo_order() {
            let g = &netlist.gates()[gi as usize];
            let in_level = g
                .used_inputs()
                .map(|n| level[n.index()])
                .max()
                .unwrap_or(0);
            let l = in_level + 1;
            level[g.output.index()] = l;
            depth = depth.max(l);
        }
        let fanout = netlist.fanout_counts();
        let driven: Vec<u32> = fanout.iter().copied().filter(|&f| f > 0).collect();
        let max_fanout = driven.iter().copied().max().unwrap_or(0);
        let mean_fanout = if driven.is_empty() {
            0.0
        } else {
            driven.iter().map(|&f| f as f64).sum::<f64>() / driven.len() as f64
        };
        NetlistStats {
            gates: netlist.gates().len(),
            dffs: netlist.dffs().len(),
            nets: netlist.num_nets(),
            depth,
            max_fanout,
            mean_fanout,
            nand2_equiv: netlist.nand2_equiv(),
        }
    }

    /// A crude maximum clock estimate from unit gate delays: with
    /// `gate_delay_ns` per level, `1000 / (depth * delay)` MHz.
    pub fn fmax_mhz(&self, gate_delay_ns: f64) -> f64 {
        if self.depth == 0 {
            return f64::INFINITY;
        }
        1000.0 / (self.depth as f64 * gate_delay_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use crate::NetlistBuilder;

    #[test]
    fn depth_of_ripple_adder_grows_linearly() {
        let depth_of = |w: usize| {
            let mut b = NetlistBuilder::new("a");
            let a = b.inputs("a", w);
            let c = b.inputs("b", w);
            let zero = b.zero();
            let r = synth::add_ripple(&mut b, &a, &c, zero);
            b.outputs("s", &r.sum);
            b.output("co", r.carry_out);
            NetlistStats::of(&b.finish().unwrap()).depth
        };
        let d8 = depth_of(8);
        let d32 = depth_of(32);
        assert!(d32 > d8 * 3, "ripple depth must scale: {d8} vs {d32}");
    }

    #[test]
    fn carry_select_is_shallower_than_ripple() {
        let depth_of = |style| {
            let mut b = NetlistBuilder::new("a");
            let a = b.inputs("a", 32);
            let c = b.inputs("b", 32);
            let zero = b.zero();
            let r = synth::add(&mut b, style, &a, &c, zero);
            b.outputs("s", &r.sum);
            NetlistStats::of(&b.finish().unwrap()).depth
        };
        use crate::synth::TechStyle;
        assert!(depth_of(TechStyle::ClaAoi) < depth_of(TechStyle::RippleMux));
    }

    #[test]
    fn fmax_sane() {
        let mut b = NetlistBuilder::new("f");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        let s = NetlistStats::of(&b.finish().unwrap());
        assert_eq!(s.depth, 2);
        assert!((s.fmax_mhz(1.0) - 500.0).abs() < 1e-9);
    }
}
