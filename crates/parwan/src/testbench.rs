//! Scalar, 64-lane and multi-word testbenches for the Parwan-class
//! core.

use std::time::Instant;

use fault::campaign::{Testbench, WideTestbench};
use fault::sim::ParallelSim;
use fault::wide::{transpose_lanes_wide, WideSim};
use netlist::sim::{CompiledOrder, Simulator};
use obs::{ProfilePhase, Profiler, Tracer};
use serde_json::Value;

use crate::core::ParwanCore;
use crate::model::BusCycle;

/// Scalar gate-level testbench with 4 KB of memory.
pub struct GateParwan<'a> {
    core: &'a ParwanCore,
    sim: Simulator,
    /// Memory image (public for checking results).
    pub mem: Vec<u8>,
    early_prog: CompiledOrder,
    late_prog: CompiledOrder,
}

impl<'a> GateParwan<'a> {
    /// Core in reset with zeroed memory. Both evaluation segments are
    /// lowered to straight-line compiled programs once, here.
    pub fn new(core: &'a ParwanCore) -> GateParwan<'a> {
        let nl = core.netlist();
        let mut sim = Simulator::new(nl);
        sim.reset(nl);
        let [early, late] = core.segments();
        GateParwan {
            core,
            sim,
            mem: vec![0; 4096],
            early_prog: CompiledOrder::compile(nl, early),
            late_prog: CompiledOrder::compile(nl, late),
        }
    }

    /// Load a program image at address 0.
    pub fn load(&mut self, image: &[u8]) {
        self.mem[..image.len()].copy_from_slice(image);
    }

    /// One clock cycle.
    pub fn cycle(&mut self) -> BusCycle {
        let nl = self.core.netlist();
        self.sim.eval_compiled(&self.early_prog);
        let addr = (self.sim.output_word(nl, "mem_addr") & 0xFFF) as u16;
        let we = self.sim.output_word(nl, "mem_we") == 1;
        let wdata = self.sim.output_word(nl, "mem_wdata") as u8;
        let rdata = self.mem[addr as usize];
        if we {
            self.mem[addr as usize] = wdata;
        }
        self.sim.set_input_word(nl, "mem_rdata", rdata as u64);
        self.sim.eval_compiled(&self.late_prog);
        self.sim.clock(nl);
        BusCycle {
            addr,
            wdata,
            we,
            rdata,
        }
    }

    /// Run `n` cycles and return the bus trace.
    pub fn run(&mut self, n: usize) -> Vec<BusCycle> {
        (0..n).map(|_| self.cycle()).collect()
    }
}

/// 64-lane self-test bench: shared base image plus per-lane overlays,
/// divergence from lane 0 on the observed bus is the detection.
pub struct ParwanSelfTestBench<'a> {
    core: &'a ParwanCore,
    base: Vec<u8>,
    // Flat per-lane overlays with generation tags (see
    // `plasma::SelfTestBench`): entry `lane * 4096 + addr` is live iff
    // its tag equals the current epoch, making `begin` O(1).
    ovl_vals: Vec<u8>,
    ovl_gens: Vec<u32>,
    gen: u32,
    budget: u64,
    scratch: [u64; 64],
    bits: Vec<u64>,
    // Optional cycle-window divergence tracing (see `with_trace`).
    tracer: Tracer,
    trace_window: u64,
    win_diff: u64,
    batch_idx: u64,
    // Optional hot-loop self-profiler (see `with_profiler`).
    profiler: Profiler,
}

impl<'a> ParwanSelfTestBench<'a> {
    /// Create the bench with the program preloaded and a cycle budget.
    pub fn new(core: &'a ParwanCore, image: &[u8], budget: u64) -> ParwanSelfTestBench<'a> {
        let mut base = vec![0u8; 4096];
        base[..image.len()].copy_from_slice(image);
        ParwanSelfTestBench {
            core,
            base,
            ovl_vals: vec![0; 64 * 4096],
            ovl_gens: vec![0; 64 * 4096],
            gen: 1,
            budget,
            scratch: [0; 64],
            bits: Vec::new(),
            tracer: Tracer::disabled(),
            trace_window: 0,
            win_diff: 0,
            batch_idx: 0,
            profiler: Profiler::disabled(),
        }
    }

    /// Attach a hot-loop self-profiler: each cycle's wall-time is split
    /// across the eval/overlay/detect/clock phases (see
    /// [`obs::ProfilePhase`]), matching the plasma benches'
    /// attribution. A disabled profiler (the default) keeps the untimed
    /// step path; detections are identical either way.
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Attach a cycle-window divergence trace: every `window` cycles the
    /// bench emits a `tb_window` event with the number of lanes that
    /// diverged from the reference inside the window. A disabled tracer
    /// leaves the step loop at one branch per cycle.
    pub fn with_trace(mut self, tracer: Tracer, window: u64) -> Self {
        self.trace_window = if tracer.enabled() { window.max(1) } else { 0 };
        self.tracer = tracer;
        self
    }

    fn read(&self, lane: usize, addr: u16) -> u8 {
        let i = (addr & 0xFFF) as usize;
        let idx = lane * 4096 + i;
        if self.ovl_gens[idx] == self.gen {
            self.ovl_vals[idx]
        } else {
            self.base[i]
        }
    }

    fn write(&mut self, lane: usize, addr: u16, wdata: u8) {
        let idx = lane * 4096 + (addr & 0xFFF) as usize;
        self.ovl_vals[idx] = wdata;
        self.ovl_gens[idx] = self.gen;
    }

    /// The per-lane memory transaction: read/overlay each lane's byte
    /// and feed the transposed read data back in.
    fn mem_phase(&mut self, sim: &mut ParallelSim) {
        let nl = self.core.netlist();
        let addr_nets = nl.port("mem_addr");
        let wdata_nets = nl.port("mem_wdata");
        let we_lanes = sim.net_lanes(nl.port("mem_we")[0]);
        for lane in 0..64 {
            let addr = (sim.lane_word(addr_nets, lane) & 0xFFF) as u16;
            self.scratch[lane] = self.read(lane, addr) as u64;
            if (we_lanes >> lane) & 1 == 1 {
                let wdata = sim.lane_word(wdata_nets, lane) as u8;
                self.write(lane, addr, wdata);
            }
        }
        fault::sim::transpose_lanes(&self.scratch, 8, &mut self.bits);
        sim.set_port_bits(nl, "mem_rdata", &self.bits);
    }

    /// One cycle, untimed — the hot path when profiling is off.
    #[inline]
    fn step_plain(&mut self, sim: &mut ParallelSim) -> u64 {
        sim.eval_segment(0);
        self.mem_phase(sim);
        let diff = sim.diff_vs_lane0(self.core.observed_outputs());
        sim.eval_segment(1);
        sim.clock();
        diff
    }

    /// One cycle with manual `Instant` checkpoints between phases (one
    /// clock read per phase boundary, not a guard per phase).
    fn step_timed(&mut self, sim: &mut ParallelSim) -> u64 {
        let t0 = Instant::now();
        sim.eval_segment(0);
        let t1 = Instant::now();
        self.mem_phase(sim);
        let t2 = Instant::now();
        let diff = sim.diff_vs_lane0(self.core.observed_outputs());
        let t3 = Instant::now();
        sim.eval_segment(1);
        let t4 = Instant::now();
        sim.clock();
        let t5 = Instant::now();
        let p = &self.profiler;
        p.add_ns(ProfilePhase::EvalEarly, (t1 - t0).as_nanos() as u64);
        p.add_ns(ProfilePhase::Overlay, (t2 - t1).as_nanos() as u64);
        p.add_ns(ProfilePhase::Detect, (t3 - t2).as_nanos() as u64);
        p.add_ns(ProfilePhase::EvalLate, (t4 - t3).as_nanos() as u64);
        p.add_ns(ProfilePhase::Clock, (t5 - t4).as_nanos() as u64);
        diff
    }
}

impl Testbench for ParwanSelfTestBench<'_> {
    fn begin(&mut self, _sim: &mut ParallelSim) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Tag wrap-around: stale tags could alias the new epoch, so
            // reset them all and restart at 1.
            self.ovl_gens.fill(0);
            self.gen = 1;
        }
        if self.trace_window != 0 {
            self.batch_idx += 1;
            self.win_diff = 0;
        }
    }

    fn step(&mut self, sim: &mut ParallelSim, cycle: u64) -> u64 {
        // One branch per cycle: the timed variant differs only in the
        // Instant checkpoints between phases, never in what it computes.
        let diff = if self.profiler.enabled() {
            self.step_timed(sim)
        } else {
            self.step_plain(sim)
        };
        if self.trace_window != 0 {
            self.win_diff |= diff;
            if (cycle + 1) % self.trace_window == 0 {
                self.tracer.event(
                    "tb_window",
                    &[
                        ("batch", Value::U64(self.batch_idx)),
                        ("cycle", Value::U64(cycle + 1)),
                        ("diverged", Value::U64(u64::from(self.win_diff.count_ones()))),
                    ],
                );
                self.win_diff = 0;
            }
        }
        diff
    }

    fn cycles(&self) -> u64 {
        self.budget
    }
}

/// The compiled-engine sibling of [`ParwanSelfTestBench`]: same base
/// image + generation-tagged overlays, widened to 64 × W lanes. Step
/// order matches the interpreted bench exactly (eval early → memory →
/// observe → eval late → clock), so detections are identical at every
/// lane width.
pub struct ParwanWideSelfTestBench<'a> {
    core: &'a ParwanCore,
    base: Vec<u8>,
    lanes: usize,
    ovl_vals: Vec<u8>,
    ovl_gens: Vec<u32>,
    gen: u32,
    budget: u64,
    scratch: Vec<u64>,
    bits: Vec<u64>,
    // Optional hot-loop self-profiler (see `with_profiler`).
    profiler: Profiler,
}

impl<'a> ParwanWideSelfTestBench<'a> {
    /// Create the bench for simulators with `lane_words` u64 words per
    /// net (must match the [`WideSim`] it will drive).
    pub fn new(
        core: &'a ParwanCore,
        image: &[u8],
        budget: u64,
        lane_words: usize,
    ) -> ParwanWideSelfTestBench<'a> {
        let mut base = vec![0u8; 4096];
        base[..image.len()].copy_from_slice(image);
        let lanes = 64 * lane_words;
        ParwanWideSelfTestBench {
            core,
            base,
            lanes,
            ovl_vals: vec![0; lanes * 4096],
            ovl_gens: vec![0; lanes * 4096],
            gen: 1,
            budget,
            scratch: vec![0; lanes],
            bits: Vec::new(),
            profiler: Profiler::disabled(),
        }
    }

    /// Attach a hot-loop self-profiler (see
    /// [`ParwanSelfTestBench::with_profiler`]).
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    // Overlay entries are word-major (`i * lanes + lane`), unlike the
    // interpreted bench: lanes mostly follow the golden instruction
    // stream, so one cycle's accesses cluster on a few addresses whose
    // entries then share cache lines.
    fn read(&self, lane: usize, addr: u16) -> u8 {
        let i = (addr & 0xFFF) as usize;
        let idx = i * self.lanes + lane;
        if self.ovl_gens[idx] == self.gen {
            self.ovl_vals[idx]
        } else {
            self.base[i]
        }
    }

    fn write(&mut self, lane: usize, addr: u16, wdata: u8) {
        let idx = (addr & 0xFFF) as usize * self.lanes + lane;
        self.ovl_vals[idx] = wdata;
        self.ovl_gens[idx] = self.gen;
    }

    /// The per-lane memory transaction, word-block at a time.
    fn mem_phase(&mut self, sim: &mut WideSim) {
        let nl = self.core.netlist();
        let addr_nets = nl.port("mem_addr");
        let wdata_nets = nl.port("mem_wdata");
        let we_net = nl.port("mem_we")[0];
        let w = sim.lane_words();
        let mut addr = [0u64; 64];
        let mut wdata = [0u64; 64];
        for t in 0..w {
            let we_lanes = sim.net_lanes_word(we_net, t);
            sim.lane_block(addr_nets, t, &mut addr);
            if we_lanes != 0 {
                sim.lane_block(wdata_nets, t, &mut wdata);
            }
            for b in 0..64 {
                let lane = (t << 6) + b;
                let a = (addr[b] & 0xFFF) as u16;
                self.scratch[lane] = self.read(lane, a) as u64;
                if (we_lanes >> b) & 1 == 1 {
                    self.write(lane, a, wdata[b] as u8);
                }
            }
        }
        transpose_lanes_wide(&self.scratch, 8, w, &mut self.bits);
        sim.set_port_bits(nl, "mem_rdata", &self.bits);
    }

    /// One cycle, untimed — the hot path when profiling is off.
    #[inline]
    fn step_plain(&mut self, sim: &mut WideSim, diff: &mut [u64]) {
        sim.eval_segment(0);
        self.mem_phase(sim);
        sim.diff_vs_lane0(self.core.observed_outputs(), diff);
        sim.eval_segment(1);
        sim.clock();
    }

    /// One cycle with manual `Instant` checkpoints between phases.
    fn step_timed(&mut self, sim: &mut WideSim, diff: &mut [u64]) {
        let t0 = Instant::now();
        sim.eval_segment(0);
        let t1 = Instant::now();
        self.mem_phase(sim);
        let t2 = Instant::now();
        sim.diff_vs_lane0(self.core.observed_outputs(), diff);
        let t3 = Instant::now();
        sim.eval_segment(1);
        let t4 = Instant::now();
        sim.clock();
        let t5 = Instant::now();
        let p = &self.profiler;
        p.add_ns(ProfilePhase::EvalEarly, (t1 - t0).as_nanos() as u64);
        p.add_ns(ProfilePhase::Overlay, (t2 - t1).as_nanos() as u64);
        p.add_ns(ProfilePhase::Detect, (t3 - t2).as_nanos() as u64);
        p.add_ns(ProfilePhase::EvalLate, (t4 - t3).as_nanos() as u64);
        p.add_ns(ProfilePhase::Clock, (t5 - t4).as_nanos() as u64);
    }
}

impl WideTestbench for ParwanWideSelfTestBench<'_> {
    fn begin(&mut self, sim: &mut WideSim) {
        assert_eq!(
            sim.lanes(),
            self.lanes,
            "bench built for {} lanes, sim has {}",
            self.lanes,
            sim.lanes()
        );
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.ovl_gens.fill(0);
            self.gen = 1;
        }
    }

    fn step(&mut self, sim: &mut WideSim, _cycle: u64, diff: &mut [u64]) {
        // One branch per cycle, same computation either way.
        if self.profiler.enabled() {
            self.step_timed(sim, diff);
        } else {
            self.step_plain(sim, diff);
        }
    }

    fn cycles(&self) -> u64 {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, ProgramBuilder};
    use crate::model::ParwanModel;
    use crate::ParwanCore;

    /// Lock-step co-simulation: the gate-level core and the behavioural
    /// model must agree cycle by cycle on the bus.
    #[test]
    fn cosim_directed() {
        let core = ParwanCore::build();
        let mut p = ProgramBuilder::new();
        p.lda(0x100)
            .add(0x101)
            .sta(0x200)
            .sub(0x101)
            .sta(0x201)
            .and(0x102)
            .sta(0x202)
            .cla()
            .cma()
            .asl()
            .cmc()
            .asr()
            .sta(0x203);
        p.lda(0x100).sub(0x100).bra(Cond::Z, 0x030);
        p.sta(0x204);
        p.pad_to(0x030);
        let h = p.here();
        p.jmp(h);
        p.pad_to(0x100).byte(100).byte(58).byte(0xF0);
        let img = p.build();

        let mut gate = GateParwan::new(&core);
        gate.load(&img);
        let mut model = ParwanModel::new();
        let mut mem = vec![0u8; 4096];
        mem[..img.len()].copy_from_slice(&img);

        for c in 0..300 {
            let want = model.cycle(&mut mem);
            let got = gate.cycle();
            assert_eq!(got, want, "bus divergence at cycle {c}");
        }
        assert_eq!(gate.mem, mem, "memory images diverged");
    }

    /// Pseudo-random instruction streams (valid encodings only) must also
    /// agree — a broad equivalence sweep.
    #[test]
    fn cosim_randomized() {
        let core = ParwanCore::build();
        let mut state = 0x1357_9BDFu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        for prog in 0..12 {
            let mut p = ProgramBuilder::new();
            for _ in 0..60 {
                let op = next() % 12;
                let addr = 0x300 + (next() % 0x80) as u16; // data window
                match op {
                    0 => {
                        p.lda(addr);
                    }
                    1 => {
                        p.and(addr);
                    }
                    2 => {
                        p.add(addr);
                    }
                    3 => {
                        p.sub(addr);
                    }
                    4 => {
                        p.sta(addr);
                    }
                    5 => {
                        p.cla();
                    }
                    6 => {
                        p.cma();
                    }
                    7 => {
                        p.cmc();
                    }
                    8 => {
                        p.asl();
                    }
                    9 => {
                        p.asr();
                    }
                    10 => {
                        p.nop();
                    }
                    _ => {
                        // Short forward branch within the page.
                        let here = p.here();
                        let tgt = (here + 2 + 2 * ((next() % 3) as u16 + 1)).min(0x2F0);
                        if tgt & 0xF00 == (here + 2) & 0xF00 {
                            p.bra(Cond(next() as u8 & 0xF), tgt);
                            while p.here() < tgt {
                                p.nop();
                            }
                        } else {
                            p.nop();
                        }
                    }
                }
                if p.here() > 0x2E0 {
                    break;
                }
            }
            let h = p.here();
            p.jmp(h);
            p.pad_to(0x300);
            for _ in 0..0x80 {
                p.byte(next() as u8);
            }
            let img = p.build();

            let mut gate = GateParwan::new(&core);
            gate.load(&img);
            let mut model = ParwanModel::new();
            let mut mem = vec![0u8; 4096];
            mem[..img.len()].copy_from_slice(&img);
            for c in 0..500 {
                let want = model.cycle(&mut mem);
                let got = gate.cycle();
                assert_eq!(got, want, "prog {prog}: divergence at cycle {c}");
            }
        }
    }
}
