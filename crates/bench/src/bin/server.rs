//! The campaign job daemon: fault-sim-as-a-service over the observatory.
//!
//! **Coordinator** (default mode) — boot the Plasma core, mount the job
//! API on the observatory, and grade shards with in-process workers:
//!
//! ```text
//! server --port 0 --workers 2                 # port 0 picks a free one
//! server --port 8080 --ledger results/LEDGER.jsonl --lease-ms 60000
//! ```
//!
//! The bound address is announced on stderr
//! (`[campaign job server listening on http://127.0.0.1:PORT/ ...]`) so
//! scripts and CI can scrape the port. Submit with curl:
//!
//! ```text
//! curl -d '{"id":"demo","netlist":"<fp>","sample":2000,"shards":4}' \
//!      http://127.0.0.1:PORT/jobs
//! curl -N http://127.0.0.1:PORT/events        # live shard progress
//! curl http://127.0.0.1:PORT/jobs/demo/result # merged report when done
//! ```
//!
//! **Worker process** — claim shards from a coordinator over the same
//! HTTP API, grade them locally, and post detections back:
//!
//! ```text
//! server --worker --connect http://127.0.0.1:PORT --name w0
//! server --worker --connect http://127.0.0.1:PORT --oneshot   # drain & exit
//! ```
//!
//! Workers re-prepare jobs deterministically from the claimed spec —
//! only the spec and shard index travel over the wire, never fault
//! lists — so their detections merge bit-identically with shards graded
//! by any other worker.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bench::{client, server::JobServer};
use fault::campaign::CampaignHooks;
use plasma::{PlasmaConfig, PlasmaCore};
use sbst::jobs::{self, CampaignJobSpec, PreparedJob};
use serde_json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut port = 0u16;
    let mut workers = 2usize;
    let mut ledger: Option<String> = None;
    let mut lease_ms = 60_000u64;
    let mut worker_mode = false;
    let mut connect: Option<String> = None;
    let mut name = format!("worker-{}", std::process::id());
    let mut oneshot = false;
    let mut poll_ms = 100u64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                port = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--port needs a port number");
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--workers needs a count");
            }
            "--ledger" => ledger = Some(it.next().expect("--ledger needs a path").clone()),
            "--lease-ms" => {
                lease_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--lease-ms needs milliseconds");
            }
            "--worker" => worker_mode = true,
            "--connect" => connect = Some(it.next().expect("--connect needs a URL").clone()),
            "--name" => name = it.next().expect("--name needs a string").clone(),
            "--oneshot" => oneshot = true,
            "--poll-ms" => {
                poll_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--poll-ms needs milliseconds");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: server [--port N] [--workers N] [--ledger file] [--lease-ms N]\n\
                     \x20      server --worker --connect URL [--name s] [--oneshot] [--poll-ms N]"
                );
                std::process::exit(2);
            }
        }
    }

    if worker_mode {
        let base = connect.unwrap_or_else(|| {
            eprintln!("--worker needs --connect URL");
            std::process::exit(2);
        });
        std::process::exit(run_worker(&base, &name, oneshot, poll_ms));
    }

    let core = Arc::new(PlasmaCore::build(PlasmaConfig::default()));
    let registry = obs::MetricRegistry::new();
    let bus = obs::EventBus::new(1024);
    let mut server = JobServer::new(Arc::clone(&core), registry.clone(), bus.clone())
        .with_lease(Duration::from_millis(lease_ms));
    if let Some(path) = &ledger {
        server = server.with_ledger(path);
    }
    let server = Arc::new(server);
    server.spawn_workers(workers);

    let timeline = obs::Timeline::start(registry.clone(), Duration::from_millis(250), 2400);
    let observatory = obs::Observatory::new(registry)
        .with_timeline(timeline)
        .with_events(bus)
        .with_api(Arc::clone(&server) as Arc<dyn obs::serve::ApiHandler>);
    let srv = obs::serve::serve_observatory(observatory, port).expect("bind job server");
    eprintln!(
        "[campaign job server listening on http://{}/ — netlist {} — POST /jobs, GET /jobs, \
         /events, /metrics, /json; {} in-process worker(s)]",
        srv.addr(),
        server.fingerprint(),
        workers
    );
    loop {
        std::thread::park();
    }
}

/// Worker-process loop: claim → (re)prepare → grade → complete. Returns
/// the process exit code: 0 on a clean `--oneshot` drain or coordinator
/// shutdown, 1 on protocol errors.
fn run_worker(base: &str, name: &str, oneshot: bool, poll_ms: u64) -> i32 {
    let core = PlasmaCore::build(PlasmaConfig::default());
    let fingerprint = bench::netlist_fingerprint(&core);
    // Jobs re-prepare deterministically from the claimed spec; cache per
    // job id so a worker granted several shards prepares once.
    let mut prepared: HashMap<String, (CampaignJobSpec, PreparedJob)> = HashMap::new();
    let mut graded = 0u64;
    let mut connect_failures = 0u32;
    loop {
        let claim_body = serde_json::to_string(&serde_json::json!({ "worker": name.to_string() }))
            .expect("encode claim");
        let (status, body) = match client::post(base, "/claim", &claim_body) {
            Ok(r) => {
                connect_failures = 0;
                r
            }
            Err(e) => {
                connect_failures += 1;
                if connect_failures >= 20 {
                    eprintln!("[{name}] coordinator unreachable ({e}); giving up");
                    return if graded > 0 { 0 } else { 1 };
                }
                std::thread::sleep(Duration::from_millis(poll_ms.max(50)));
                continue;
            }
        };
        if status != 200 {
            eprintln!("[{name}] POST /claim → {status}: {body}");
            return 1;
        }
        let doc: Value = match serde_json::from_str(&body) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("[{name}] bad claim response: {e}");
                return 1;
            }
        };
        if doc["assigned"].as_bool() != Some(true) {
            if oneshot {
                eprintln!("[{name}] queue drained after {graded} shard(s); exiting");
                return 0;
            }
            std::thread::sleep(Duration::from_millis(poll_ms));
            continue;
        }
        let job_id = doc["job"].as_str().unwrap_or_default().to_string();
        let shard = doc["shard"].as_u64().unwrap_or(0) as usize;
        let (netlist, spec) = match bench::server::spec_from_claim(&doc["spec"]) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[{name}] bad claim spec for `{job_id}`: {e}");
                return 1;
            }
        };
        if netlist != fingerprint {
            eprintln!(
                "[{name}] claim for netlist {netlist} but this worker builds {fingerprint}; \
                 refusing"
            );
            return 1;
        }
        let stale = match prepared.get(&job_id) {
            Some((s, _)) => *s != spec,
            None => true,
        };
        if stale {
            let j = jobs::prepare(&core, &spec);
            prepared.insert(job_id.clone(), (spec, j));
        }
        let (spec, job) = &prepared[&job_id];
        eprintln!(
            "[{name}] grading shard {shard} of `{job_id}` ({} faults)",
            job.bounds[shard].1 - job.bounds[shard].0
        );
        let result = jobs::run_shard(&core, job, spec, shard, &CampaignHooks::none());
        let completion = bench::server::completion_json(&job_id, shard, name, &result);
        let body = serde_json::to_string(&completion).expect("encode completion");
        match client::post(base, "/complete", &body) {
            Ok((200, _)) => graded += 1,
            Ok((status, err)) => {
                eprintln!("[{name}] POST /complete → {status}: {err}");
                return 1;
            }
            Err(e) => {
                eprintln!("[{name}] POST /complete failed: {e}");
                return 1;
            }
        }
    }
}
