//! MIPS I instruction set: operations, formats, binary encode/decode.
//!
//! The supported subset is exactly what the Plasma core implements: all
//! MIPS I user-mode instructions except the unaligned load/store family
//! (`lwl`/`lwr`/`swl`/`swr`) and exception-related instructions
//! (`syscall`/`break` and CP0 traffic).

use std::fmt;

/// A general-purpose register, `$0`–`$31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register `$0`.
    pub const ZERO: Reg = Reg(0);
    /// The return-address register `$31`.
    pub const RA: Reg = Reg(31);

    /// ABI name (`$t0`, `$sp`, ...).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        NAMES[(self.0 & 31) as usize]
    }

    /// Parse `$5`, `$t0`, `$zero`, ... Returns `None` on anything else.
    pub fn parse(s: &str) -> Option<Reg> {
        let body = s.strip_prefix('$')?;
        if let Ok(n) = body.parse::<u8>() {
            return if n < 32 { Some(Reg(n)) } else { None };
        }
        (0u8..32)
            .map(Reg)
            .find(|r| &r.abi_name()[1..] == body)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Operation mnemonics of the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Op {
    // shifts
    Sll, Srl, Sra, Sllv, Srlv, Srav,
    // jumps through registers
    Jr, Jalr,
    // HI/LO traffic
    Mfhi, Mthi, Mflo, Mtlo,
    // multiply / divide
    Mult, Multu, Div, Divu,
    // 3-register ALU
    Add, Addu, Sub, Subu, And, Or, Xor, Nor, Slt, Sltu,
    // immediate ALU
    Addi, Addiu, Slti, Sltiu, Andi, Ori, Xori, Lui,
    // branches
    Beq, Bne, Blez, Bgtz, Bltz, Bgez, Bltzal, Bgezal,
    // jumps
    J, Jal,
    // loads / stores
    Lb, Lh, Lw, Lbu, Lhu, Sb, Sh, Sw,
}

/// Encoding format classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `op rd, rs, rt` (SPECIAL funct).
    R3,
    /// `op rd, rt, shamt` (constant shifts).
    RShift,
    /// `op rd, rt, rs` (variable shifts — note the operand order).
    RShiftV,
    /// `jr rs`.
    RJr,
    /// `jalr rd, rs`.
    RJalr,
    /// `mfhi/mflo rd`.
    RMfHiLo,
    /// `mthi/mtlo rs`.
    RMtHiLo,
    /// `mult/div rs, rt`.
    RMulDiv,
    /// `op rt, rs, imm` with sign-extended immediate.
    ISigned,
    /// `op rt, rs, imm` with zero-extended immediate.
    IUnsigned,
    /// `lui rt, imm`.
    ILui,
    /// `beq/bne rs, rt, off`.
    IBranch2,
    /// `blez/bgtz rs, off`.
    IBranch1,
    /// REGIMM branches `bltz/bgez[al] rs, off`.
    IRegimm,
    /// `j/jal target`.
    JAbs,
    /// `op rt, off(base)`.
    IMem,
}

struct OpInfo {
    op: Op,
    mnemonic: &'static str,
    format: Format,
    /// Primary opcode (bits 31:26).
    opcode: u8,
    /// funct for SPECIAL, rt for REGIMM, unused otherwise.
    sub: u8,
}

const fn info(op: Op, mnemonic: &'static str, format: Format, opcode: u8, sub: u8) -> OpInfo {
    OpInfo {
        op,
        mnemonic,
        format,
        opcode,
        sub,
    }
}

#[rustfmt::skip]
static OPS: &[OpInfo] = &[
    info(Op::Sll,    "sll",    Format::RShift,    0x00, 0x00),
    info(Op::Srl,    "srl",    Format::RShift,    0x00, 0x02),
    info(Op::Sra,    "sra",    Format::RShift,    0x00, 0x03),
    info(Op::Sllv,   "sllv",   Format::RShiftV,   0x00, 0x04),
    info(Op::Srlv,   "srlv",   Format::RShiftV,   0x00, 0x06),
    info(Op::Srav,   "srav",   Format::RShiftV,   0x00, 0x07),
    info(Op::Jr,     "jr",     Format::RJr,       0x00, 0x08),
    info(Op::Jalr,   "jalr",   Format::RJalr,     0x00, 0x09),
    info(Op::Mfhi,   "mfhi",   Format::RMfHiLo,   0x00, 0x10),
    info(Op::Mthi,   "mthi",   Format::RMtHiLo,   0x00, 0x11),
    info(Op::Mflo,   "mflo",   Format::RMfHiLo,   0x00, 0x12),
    info(Op::Mtlo,   "mtlo",   Format::RMtHiLo,   0x00, 0x13),
    info(Op::Mult,   "mult",   Format::RMulDiv,   0x00, 0x18),
    info(Op::Multu,  "multu",  Format::RMulDiv,   0x00, 0x19),
    info(Op::Div,    "div",    Format::RMulDiv,   0x00, 0x1a),
    info(Op::Divu,   "divu",   Format::RMulDiv,   0x00, 0x1b),
    info(Op::Add,    "add",    Format::R3,        0x00, 0x20),
    info(Op::Addu,   "addu",   Format::R3,        0x00, 0x21),
    info(Op::Sub,    "sub",    Format::R3,        0x00, 0x22),
    info(Op::Subu,   "subu",   Format::R3,        0x00, 0x23),
    info(Op::And,    "and",    Format::R3,        0x00, 0x24),
    info(Op::Or,     "or",     Format::R3,        0x00, 0x25),
    info(Op::Xor,    "xor",    Format::R3,        0x00, 0x26),
    info(Op::Nor,    "nor",    Format::R3,        0x00, 0x27),
    info(Op::Slt,    "slt",    Format::R3,        0x00, 0x2a),
    info(Op::Sltu,   "sltu",   Format::R3,        0x00, 0x2b),
    info(Op::Bltz,   "bltz",   Format::IRegimm,   0x01, 0x00),
    info(Op::Bgez,   "bgez",   Format::IRegimm,   0x01, 0x01),
    info(Op::Bltzal, "bltzal", Format::IRegimm,   0x01, 0x10),
    info(Op::Bgezal, "bgezal", Format::IRegimm,   0x01, 0x11),
    info(Op::J,      "j",      Format::JAbs,      0x02, 0x00),
    info(Op::Jal,    "jal",    Format::JAbs,      0x03, 0x00),
    info(Op::Beq,    "beq",    Format::IBranch2,  0x04, 0x00),
    info(Op::Bne,    "bne",    Format::IBranch2,  0x05, 0x00),
    info(Op::Blez,   "blez",   Format::IBranch1,  0x06, 0x00),
    info(Op::Bgtz,   "bgtz",   Format::IBranch1,  0x07, 0x00),
    info(Op::Addi,   "addi",   Format::ISigned,   0x08, 0x00),
    info(Op::Addiu,  "addiu",  Format::ISigned,   0x09, 0x00),
    info(Op::Slti,   "slti",   Format::ISigned,   0x0a, 0x00),
    info(Op::Sltiu,  "sltiu",  Format::ISigned,   0x0b, 0x00),
    info(Op::Andi,   "andi",   Format::IUnsigned, 0x0c, 0x00),
    info(Op::Ori,    "ori",    Format::IUnsigned, 0x0d, 0x00),
    info(Op::Xori,   "xori",   Format::IUnsigned, 0x0e, 0x00),
    info(Op::Lui,    "lui",    Format::ILui,      0x0f, 0x00),
    info(Op::Lb,     "lb",     Format::IMem,      0x20, 0x00),
    info(Op::Lh,     "lh",     Format::IMem,      0x21, 0x00),
    info(Op::Lw,     "lw",     Format::IMem,      0x23, 0x00),
    info(Op::Lbu,    "lbu",    Format::IMem,      0x24, 0x00),
    info(Op::Lhu,    "lhu",    Format::IMem,      0x25, 0x00),
    info(Op::Sb,     "sb",     Format::IMem,      0x28, 0x00),
    info(Op::Sh,     "sh",     Format::IMem,      0x29, 0x00),
    info(Op::Sw,     "sw",     Format::IMem,      0x2b, 0x00),
];

impl Op {
    fn table(self) -> &'static OpInfo {
        OPS.iter().find(|i| i.op == self).expect("op in table")
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        self.table().mnemonic
    }

    /// Encoding format class.
    pub fn format(self) -> Format {
        self.table().format
    }

    /// Look up an op by mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Op> {
        OPS.iter().find(|i| i.mnemonic == s).map(|i| i.op)
    }

    /// All supported operations (for exhaustive tests and random program
    /// generation).
    pub fn all() -> impl Iterator<Item = Op> {
        OPS.iter().map(|i| i.op)
    }

    /// Whether the op is a load or store.
    pub fn is_mem(self) -> bool {
        matches!(self.format(), Format::IMem)
    }

    /// Whether the op is a load.
    pub fn is_load(self) -> bool {
        matches!(self, Op::Lb | Op::Lh | Op::Lw | Op::Lbu | Op::Lhu)
    }

    /// Whether the op is a store.
    pub fn is_store(self) -> bool {
        matches!(self, Op::Sb | Op::Sh | Op::Sw)
    }
}

/// A decoded instruction: operation plus all field values (unused fields
/// are zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Instr {
    /// Operation, or `None` for words that decode to no supported
    /// instruction (the hardware treats them as no-ops).
    pub op: Option<Op>,
    /// Destination register field.
    pub rd: Reg,
    /// First source register field.
    pub rs: Reg,
    /// Second source / target register field.
    pub rt: Reg,
    /// Shift amount field.
    pub shamt: u8,
    /// 16-bit immediate field (raw; sign-extension is per-format).
    pub imm: u16,
    /// 26-bit jump index field.
    pub target: u32,
}

/// The canonical no-operation: `sll $0, $0, 0`, encoding `0x0000_0000`.
pub const NOP: u32 = 0;

impl Instr {
    /// Construct an R3 ALU instruction.
    pub fn r3(op: Op, rd: Reg, rs: Reg, rt: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::R3);
        Instr {
            op: Some(op),
            rd,
            rs,
            rt,
            ..Default::default()
        }
    }

    /// Construct a constant shift.
    pub fn shift(op: Op, rd: Reg, rt: Reg, shamt: u8) -> Instr {
        debug_assert_eq!(op.format(), Format::RShift);
        Instr {
            op: Some(op),
            rd,
            rt,
            shamt: shamt & 31,
            ..Default::default()
        }
    }

    /// Construct an immediate-operand instruction (`addi`-class, `andi`-
    /// class or `lui`).
    pub fn imm(op: Op, rt: Reg, rs: Reg, imm: u16) -> Instr {
        debug_assert!(matches!(
            op.format(),
            Format::ISigned | Format::IUnsigned | Format::ILui
        ));
        Instr {
            op: Some(op),
            rt,
            rs,
            imm,
            ..Default::default()
        }
    }

    /// Construct a load/store: `op rt, offset(base)`.
    pub fn mem(op: Op, rt: Reg, base: Reg, offset: i16) -> Instr {
        debug_assert_eq!(op.format(), Format::IMem);
        Instr {
            op: Some(op),
            rt,
            rs: base,
            imm: offset as u16,
            ..Default::default()
        }
    }

    /// Encode into the 32-bit instruction word.
    pub fn encode(&self) -> u32 {
        let op = match self.op {
            Some(op) => op,
            None => return NOP,
        };
        let t = op.table();
        let opc = (t.opcode as u32) << 26;
        let rs = (self.rs.0 as u32) << 21;
        let rt = (self.rt.0 as u32) << 16;
        let rd = (self.rd.0 as u32) << 11;
        let sh = (self.shamt as u32) << 6;
        let funct = t.sub as u32;
        let imm = self.imm as u32;
        match t.format {
            Format::R3 => opc | rs | rt | rd | funct,
            Format::RShift => opc | rt | rd | sh | funct,
            Format::RShiftV => opc | rs | rt | rd | funct,
            Format::RJr => opc | rs | funct,
            Format::RJalr => opc | rs | rd | funct,
            Format::RMfHiLo => opc | rd | funct,
            Format::RMtHiLo => opc | rs | funct,
            Format::RMulDiv => opc | rs | rt | funct,
            Format::ISigned | Format::IUnsigned | Format::IBranch2 | Format::IMem => {
                opc | rs | rt | imm
            }
            Format::ILui => opc | rt | imm,
            Format::IBranch1 => opc | rs | imm,
            Format::IRegimm => opc | rs | ((t.sub as u32) << 16) | imm,
            Format::JAbs => opc | (self.target & 0x03FF_FFFF),
        }
    }

    /// Decode a 32-bit word. Unsupported encodings yield `op: None`
    /// (executed as a no-op, like the hardware's default decode path).
    pub fn decode(word: u32) -> Instr {
        let opcode = ((word >> 26) & 0x3F) as u8;
        let rs = Reg(((word >> 21) & 31) as u8);
        let rt = Reg(((word >> 16) & 31) as u8);
        let rd = Reg(((word >> 11) & 31) as u8);
        let shamt = ((word >> 6) & 31) as u8;
        let funct = (word & 0x3F) as u8;
        let imm = (word & 0xFFFF) as u16;
        let target = word & 0x03FF_FFFF;
        let found = OPS.iter().find(|i| match i.format {
            Format::R3
            | Format::RShift
            | Format::RShiftV
            | Format::RJr
            | Format::RJalr
            | Format::RMfHiLo
            | Format::RMtHiLo
            | Format::RMulDiv => i.opcode == opcode && opcode == 0 && i.sub == funct,
            Format::IRegimm => i.opcode == opcode && i.sub == rt.0,
            _ => i.opcode == opcode && opcode != 0 && opcode != 1,
        });
        Instr {
            op: found.map(|i| i.op),
            rd,
            rs,
            rt,
            shamt,
            imm,
            target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_round_trip() {
        for n in 0..32u8 {
            let r = Reg(n);
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("${n}")), Some(r));
        }
        assert_eq!(Reg::parse("$32"), None);
        assert_eq!(Reg::parse("t0"), None);
        assert_eq!(Reg::parse("$nope"), None);
    }

    #[test]
    fn known_encodings() {
        // Cross-checked against the MIPS I manual.
        // add $t0, $t1, $t2 -> 0x012A4020
        let i = Instr::r3(Op::Add, Reg(8), Reg(9), Reg(10));
        assert_eq!(i.encode(), 0x012A_4020);
        // lw $t0, 4($sp) -> 0x8FA80004
        let i = Instr::mem(Op::Lw, Reg(8), Reg(29), 4);
        assert_eq!(i.encode(), 0x8FA8_0004);
        // sll $0,$0,0 == nop == 0
        let i = Instr::shift(Op::Sll, Reg(0), Reg(0), 0);
        assert_eq!(i.encode(), 0);
        // lui $a0, 0x1234 -> 0x3C041234
        let i = Instr::imm(Op::Lui, Reg(4), Reg(0), 0x1234);
        assert_eq!(i.encode(), 0x3C04_1234);
        // jr $ra -> 0x03E00008
        let i = Instr {
            op: Some(Op::Jr),
            rs: Reg(31),
            ..Default::default()
        };
        assert_eq!(i.encode(), 0x03E0_0008);
        // bgezal $s0, +1 -> opcode 1, rt=0x11
        let i = Instr {
            op: Some(Op::Bgezal),
            rs: Reg(16),
            imm: 1,
            ..Default::default()
        };
        assert_eq!(i.encode(), 0x0611_0001);
    }

    #[test]
    fn encode_decode_round_trip_all_ops() {
        for op in Op::all() {
            let i = Instr {
                op: Some(op),
                rd: Reg(13),
                rs: Reg(21),
                rt: Reg(7),
                shamt: 9,
                imm: 0xBEEF,
                target: 0x12_3456,
            };
            let word = i.encode();
            let d = Instr::decode(word);
            assert_eq!(d.op, Some(op), "{op:?} decoded as {:?}", d.op);
            // Re-encoding the decode must reproduce the word exactly.
            assert_eq!(d.encode(), word, "{op:?} re-encode mismatch");
        }
    }

    #[test]
    fn undefined_words_decode_to_none() {
        // 0x0405_0000 is REGIMM with rt=5, an unassigned condition code.
        for word in [0xFFFF_FFFFu32, 0x0000_003F, 0x7000_0000, 0x0405_0000] {
            assert_eq!(Instr::decode(word).op, None, "{word:#010x}");
        }
        // and the canonical nop decodes to sll
        assert_eq!(Instr::decode(NOP).op, Some(Op::Sll));
    }

    #[test]
    fn mem_classification() {
        assert!(Op::Lw.is_load() && Op::Lw.is_mem() && !Op::Lw.is_store());
        assert!(Op::Sb.is_store() && Op::Sb.is_mem() && !Op::Sb.is_load());
        assert!(!Op::Add.is_mem());
    }
}
