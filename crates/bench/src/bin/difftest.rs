//! Command-line lockstep differential fuzzer (see `crates/difftest`).
//!
//! ```text
//! difftest --seeds 64                  # fuzz 64 random programs, ISS vs netlist
//! difftest --seeds 8 --instrs 200     # longer random bodies
//! difftest --threads 4                # worker threads (default: SBST_THREADS/cores)
//! difftest --seed-start 1000          # shift the seed window
//! difftest --no-feedback              # disable coverage-feedback scheduling
//! difftest --inject                   # demo: inject a netlist fault, localize,
//!                                     #   shrink, persist into the corpus
//! difftest --inject --wave            # also dump a differential VCD of the
//!                                     #   injected fault -> results/WAVE_difftest_*
//! difftest --replay                   # replay every corpus case, fail on change
//! difftest --parwan                   # also lockstep-fuzz the Parwan pair
//! difftest --corpus DIR               # corpus directory (default tests/corpus)
//! difftest --trace FILE --progress    # JSONL events / live seed ticker
//! difftest --sched-wave N             # feedback scheduling wave size
//! ```
//!
//! `--wave` attaches a wave probe to the lockstep oracle: the injected-fault
//! demo re-runs its chosen fault and writes a good/faulty/diff VCD, and the
//! first divergent fuzz seed (if any) gets a VCD of its divergence window.
//! `--wave-pre` / `--wave-post` size the capture window around the trigger;
//! `--wave-probe` (comma-separated component names or port globs,
//! repeatable) selects what is sampled — default every port + all state.
//!
//! Every invocation appends one run record to `results/LEDGER.jsonl`
//! (`--ledger FILE` overrides, `--no-ledger` disables); `bench --bin
//! ledger` renders trends and gates regressions. `--metrics-out FILE`
//! dumps the metric registry (Prometheus text, or a JSON snapshot when
//! FILE ends in `.json`); `--serve PORT` starts the live observatory
//! *before* the run (dashboard at `/`, `/metrics`, `/json`, `/timeline`,
//! `/events` SSE, `/trace`) and keeps the process alive afterwards.
//!
//! Exit status: 0 clean, 1 a divergence was found (reproducer persisted),
//! 2 corpus replay regressed.

use std::path::PathBuf;
use std::process::ExitCode;

use difftest::corpus::{self, CorpusCase, CorpusFault, NetlistSig, ReplayOutcome};
use difftest::oracle::{OracleConfig, PlasmaOracle};
use difftest::parwan_oracle::{random_parwan_image, ParwanOracle};
use difftest::{fuzz_plasma, shrink, FuzzConfig, FuzzHooks};
use fault::model::{Fault, FaultList};
use mips::gen::{random_parts, GenConfig};
use obs::{LedgerRecord, MetricRegistry, Progress, Tracer};
use plasma::{PlasmaConfig, PlasmaCore};
use serde_json::Value;

/// Bump `difftest_shrink_steps_total` by the oracle runs a shrink took.
fn count_shrink_steps(metrics: Option<&MetricRegistry>, runs: u64) {
    if let Some(reg) = metrics {
        reg.counter(
            "difftest_shrink_steps_total",
            "oracle runs spent shrinking reproducers",
            &[],
        )
        .inc(runs);
    }
}

/// Epilogue shared by every mode: append exactly one ledger record,
/// dump the metric registry when asked. Blocks forever when the
/// observatory is serving (it went live before the run).
fn finish(
    metrics: Option<&MetricRegistry>,
    ledger_path: &std::path::Path,
    no_ledger: bool,
    record: LedgerRecord,
    metrics_out: Option<&std::path::Path>,
    serving: bool,
) {
    if !no_ledger {
        obs::ledger::append(ledger_path, &record).expect("append run ledger");
        eprintln!(
            "[run record ({}) appended to {}]",
            record.kind,
            ledger_path.display()
        );
    }
    if let Some(reg) = metrics {
        if let Some(path) = metrics_out {
            let body = if path.extension().is_some_and(|e| e == "json") {
                serde_json::to_string_pretty(&reg.snapshot()).expect("serialize")
            } else {
                reg.to_prometheus()
            };
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir).expect("create metrics dir");
            }
            std::fs::write(path, body).expect("write metrics");
            eprintln!("[metrics written to {}]", path.display());
        }
    }
    if serving {
        eprintln!("[observatory still serving — ctrl-C to exit]");
        loop {
            std::thread::park();
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FuzzConfig {
        seeds: 32,
        ..FuzzConfig::default()
    };
    let mut corpus_dir = PathBuf::from("tests/corpus");
    let mut inject = false;
    let mut replay = false;
    let mut wave_dump = false;
    let mut wave = fault::wave::WaveOptions::default();
    let mut parwan_too = false;
    let mut progress = false;
    let mut trace_path: Option<PathBuf> = None;
    let cmd = args.join(" ");
    let mut ledger_path = PathBuf::from("results/LEDGER.jsonl");
    let mut no_ledger = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut serve_port: Option<u16> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                cfg.seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seeds needs a number");
            }
            "--instrs" => {
                cfg.body_len = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--instrs needs a number");
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a number");
            }
            "--seed-start" => {
                cfg.seed_start = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed-start needs a number");
            }
            "--sched-wave" => {
                cfg.wave = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sched-wave needs a number");
            }
            "--wave" => wave_dump = true,
            "--wave-pre" => {
                wave.pre = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--wave-pre needs a cycle count");
            }
            "--wave-post" => {
                wave.post = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--wave-post needs a cycle count");
            }
            "--wave-probe" => {
                let spec = it.next().expect("--wave-probe needs component/port specs");
                wave.probe.extend(spec.split(',').map(|s| s.trim().to_string()));
            }
            "--max-cycles" => {
                cfg.oracle.max_cycles = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-cycles needs a number");
            }
            "--no-feedback" => cfg.feedback = false,
            "--inject" => inject = true,
            "--replay" => replay = true,
            "--parwan" => parwan_too = true,
            "--progress" => progress = true,
            "--corpus" => {
                corpus_dir = it.next().expect("--corpus needs a directory").into();
            }
            "--trace" => {
                trace_path = Some(it.next().expect("--trace needs a path").into());
            }
            "--ledger" => {
                ledger_path = it.next().expect("--ledger needs a path").into();
            }
            "--no-ledger" => no_ledger = true,
            "--metrics-out" => {
                metrics_out = Some(it.next().expect("--metrics-out needs a path").into());
            }
            "--serve" => {
                serve_port = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--serve needs a port"),
                );
            }
            other => {
                eprintln!("unknown argument `{other}` (see source header for usage)");
                return ExitCode::from(2);
            }
        }
    }

    let tracer = match &trace_path {
        Some(p) => Tracer::to_path(p).expect("open trace file"),
        None => Tracer::disabled(),
    };
    let metrics = (metrics_out.is_some() || serve_port.is_some()).then(MetricRegistry::new);
    let mut events: Option<obs::EventBus> = None;
    let mut serving = false;
    if let Some(port) = serve_port {
        // The observatory goes live *before* the fuzzing run so the
        // dashboard, SSE stream, and timeline watch it as it happens.
        let reg = metrics.clone().expect("serve registry");
        let bus = obs::EventBus::new(1024);
        events = Some(bus.clone());
        let timeline =
            obs::Timeline::start(reg.clone(), std::time::Duration::from_millis(250), 2400);
        let tp = trace_path.clone();
        let observatory = obs::Observatory::new(reg)
            .with_timeline(timeline)
            .with_events(bus)
            .with_trace_provider(move || {
                let jsonl = tp
                    .as_ref()
                    .and_then(|p| std::fs::read_to_string(p).ok())
                    .unwrap_or_default();
                serde_json::to_string(&obs::traceviz::render(&jsonl, None))
                    .expect("serialize trace")
            });
        let srv = obs::serve::serve_observatory(observatory, port).expect("bind observatory");
        eprintln!(
            "[observatory live at http://{}/ — /metrics /json /timeline /events /trace]",
            srv.addr()
        );
        serving = true;
    }
    eprintln!("building gate-level core...");
    let core = PlasmaCore::build(PlasmaConfig::default());
    let sig = NetlistSig::of(&core);
    let fingerprint = format!("n{}/g{}/d{}", sig.nets, sig.gates, sig.dffs);

    if replay {
        let (code, cases, failed) = replay_corpus(&core, &corpus_dir);
        let mut rec = LedgerRecord::now("difftest-replay", &cmd);
        rec.netlist = fingerprint;
        rec.extra.insert("cases".to_string(), Value::U64(cases));
        rec.extra.insert("failed".to_string(), Value::U64(failed));
        finish(
            metrics.as_ref(),
            &ledger_path,
            no_ledger,
            rec,
            metrics_out.as_deref(),
            serving,
        );
        return code;
    }

    let hooks = FuzzHooks {
        tracer,
        progress: progress.then(|| Progress::new("difftest", cfg.seeds)),
        metrics: metrics.clone(),
        events,
    };

    let mut status = ExitCode::SUCCESS;
    println!(
        "fuzzing {} seeds (body {} instrs, feedback {})...",
        cfg.seeds, cfg.body_len, if cfg.feedback { "on" } else { "off" }
    );
    let t0 = std::time::Instant::now();
    let report = fuzz_plasma(&core, &cfg, &hooks);
    let wall = t0.elapsed().as_secs_f64();
    if let Some(p) = &hooks.progress {
        p.finish();
    }
    let finished = report.outcomes.iter().filter(|o| o.finished).count();
    println!(
        "  {} seeds run, {} terminated, {} divergence(s)",
        report.outcomes.len(),
        finished,
        report.divergent_seeds().len()
    );
    println!("  component exercise (executed instructions):");
    for (name, count) in &report.exercise.counts {
        println!("    {name:<6} {count}");
    }

    if let Some(&seed) = report.divergent_seeds().first() {
        // A real ISS/netlist disagreement: report, shrink, persist.
        status = ExitCode::from(1);
        let outcome = report
            .outcomes
            .iter()
            .find(|o| o.seed == seed)
            .expect("divergent seed is in outcomes");
        let d = outcome.divergence.as_ref().unwrap();
        println!("\n{}", d.to_report());
        let gcfg = GenConfig {
            branch_weight: outcome.weights.0,
            mem_weight: outcome.weights.1,
            muldiv_weight: outcome.weights.2,
            body_len: cfg.body_len,
            ..GenConfig::default()
        };
        let mut oracle = PlasmaOracle::new(&core, cfg.oracle.clone());
        let parts = random_parts(seed, &gcfg);
        let shrunk = shrink(&mut oracle, &parts, &[]);
        count_shrink_steps(metrics.as_ref(), shrunk.runs);
        println!(
            "shrunk seed {seed} to {} body instruction(s) in {} oracle runs",
            shrunk.body_instrs, shrunk.runs
        );
        let case = CorpusCase {
            name: format!("divergence-seed{seed}"),
            seed,
            data_base: gcfg.data_base,
            data_size: gcfg.data_size,
            body: shrunk.parts.body.clone(),
            fault: None,
            expect_divergence: true,
            expect_cycle: shrunk.report.divergence.as_ref().map(|d| d.cycle),
        };
        match corpus::save(&case, &corpus_dir) {
            Ok(p) => println!("reproducer persisted to {}", p.display()),
            Err(e) => eprintln!("could not persist reproducer: {e}"),
        }
        if wave_dump {
            // ISS-vs-netlist divergence: lane 0 is the divergent machine, so
            // the faulty/diff scopes stay flat — the trigger still marks the
            // divergence cycle and the window shows the surrounding state.
            dump_oracle_wave(
                &core,
                &mut oracle,
                &parts.to_program(),
                &[],
                0,
                &wave,
                &format!("seed{seed}"),
                &format!("difftest ISS/netlist divergence, seed {seed}"),
            );
        }
    }

    if inject {
        println!("\ninjected-fault demo:");
        if !run_injection_demo(
            &core,
            &cfg,
            &corpus_dir,
            metrics.as_ref(),
            wave_dump.then_some(&wave),
        ) {
            status = ExitCode::from(1);
        }
    }

    if parwan_too {
        println!("\nparwan pair:");
        let pcore = parwan::ParwanCore::build();
        let mut oracle = ParwanOracle::new(&pcore);
        let mut bad = 0;
        for seed in cfg.seed_start..cfg.seed_start + cfg.seeds {
            let report = oracle.run(&random_parwan_image(seed), &[], 600);
            if let Some(d) = report.divergence {
                eprintln!("  seed {seed}: model/netlist divergence at cycle {}", d.cycle);
                bad += 1;
            }
        }
        println!("  {} seeds run, {bad} divergence(s)", cfg.seeds);
        if bad > 0 {
            status = ExitCode::from(1);
        }
    }

    let total_cycles: u64 = report.outcomes.iter().map(|o| o.cycles).sum();
    let divergences = report.divergent_seeds().len() as u64;
    let mut rec = LedgerRecord::now("difftest", &cmd);
    rec.netlist = fingerprint;
    rec.threads = if cfg.threads == 0 {
        fault::campaign::default_threads() as u64
    } else {
        cfg.threads as u64
    };
    rec.cycles = total_cycles;
    rec.wall_seconds = wall;
    rec.mlane_cps = if wall > 0.0 {
        total_cycles as f64 / wall / 1.0e6
    } else {
        0.0
    };
    rec.extra
        .insert("seeds".to_string(), Value::U64(report.outcomes.len() as u64));
    rec.extra
        .insert("divergences".to_string(), Value::U64(divergences));
    rec.extra.insert(
        "seeds_per_sec".to_string(),
        Value::F64(if wall > 0.0 {
            report.outcomes.len() as f64 / wall
        } else {
            0.0
        }),
    );
    finish(
        metrics.as_ref(),
        &ledger_path,
        no_ledger,
        rec,
        metrics_out.as_deref(),
        serving,
    );

    status
}

/// Re-run `program` under the lockstep oracle with a wave probe attached
/// and write the captured window as a differential good/faulty/diff VCD
/// under `results/`. Probe errors are reported, never fatal.
fn dump_oracle_wave(
    core: &PlasmaCore,
    oracle: &mut PlasmaOracle,
    program: &mips::Program,
    injections: &[(Fault, usize)],
    faulty_lane: usize,
    wave: &fault::wave::WaveOptions,
    desc: &str,
    comment: &str,
) {
    let probe = match netlist::wave::Probe::from_spec(core.netlist(), &wave.probe) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("  wave probe error: {e}");
            return;
        }
    };
    let mut cap = fault::wave::WaveCapture::new(probe, wave);
    oracle.run_wave(program, injections, &mut cap, faulty_lane);
    let captured = cap.finish();
    let path = std::path::Path::new("results")
        .join(fault::wave::wave_file_name("difftest", desc));
    match captured.write_file(&path, comment) {
        Ok(()) => println!("  wave written to {}", path.display()),
        Err(e) => eprintln!("  could not write wave: {e}"),
    }
}

/// Inject the first detectable collapsed fault into lane 1, localize it,
/// shrink the program, persist the reproducer, and verify the replay.
fn run_injection_demo(
    core: &PlasmaCore,
    cfg: &FuzzConfig,
    corpus_dir: &std::path::Path,
    metrics: Option<&MetricRegistry>,
    wave: Option<&fault::wave::WaveOptions>,
) -> bool {
    let mut oracle = PlasmaOracle::new(core, cfg.oracle.clone());
    let gcfg = GenConfig {
        body_len: cfg.body_len.min(60),
        ..GenConfig::default()
    };
    let parts = random_parts(cfg.seed_start, &gcfg);
    let program = parts.to_program();
    let list = FaultList::extract(core.netlist()).collapsed(core.netlist());
    let mut chosen = None;
    for batch in list.faults.chunks(63) {
        let injections: Vec<(Fault, usize)> = batch
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i + 1))
            .collect();
        let report = oracle.run(&program, &injections);
        if let Some((lane, cycle)) = report.first_faulty_divergence() {
            chosen = Some((batch[lane - 1], cycle));
            break;
        }
    }
    let Some((fault, cycle)) = chosen else {
        eprintln!("  no detectable fault found (unexpected)");
        return false;
    };
    println!(
        "  fault `{}` detected, first divergent cycle {cycle}",
        fault.describe()
    );
    if let Some(w) = wave {
        dump_oracle_wave(
            core,
            &mut oracle,
            &program,
            &[(fault, 1)],
            1,
            w,
            &fault.describe(),
            &format!(
                "difftest injected fault `{}`; first divergent cycle {cycle}",
                fault.describe()
            ),
        );
    }
    let shrunk = shrink(&mut oracle, &parts, &[(fault, 1)]);
    count_shrink_steps(metrics, shrunk.runs);
    let min_cycle = shrunk.report.first_faulty_divergence().map(|(_, c)| c);
    println!(
        "  shrunk to {} body instruction(s) in {} oracle runs (detects at cycle {:?})",
        shrunk.body_instrs, shrunk.runs, min_cycle
    );
    let case = CorpusCase {
        name: format!(
            "inject-seed{}-{}",
            cfg.seed_start,
            fault.describe().replace(['/', ' '], "-")
        ),
        seed: cfg.seed_start,
        data_base: gcfg.data_base,
        data_size: gcfg.data_size,
        body: shrunk.parts.body.clone(),
        fault: Some(CorpusFault {
            fault,
            lane: 1,
            describe: fault.describe(),
            sig: NetlistSig::of(core),
        }),
        expect_divergence: true,
        expect_cycle: min_cycle,
    };
    match corpus::save(&case, corpus_dir) {
        Ok(p) => println!("  reproducer persisted to {}", p.display()),
        Err(e) => {
            eprintln!("  could not persist reproducer: {e}");
            return false;
        }
    }
    match corpus::replay(&case, core, &mut oracle) {
        ReplayOutcome::Pass => {
            println!("  replay: pass");
            true
        }
        other => {
            eprintln!("  replay: {other:?}");
            false
        }
    }
}

fn replay_corpus(core: &PlasmaCore, dir: &std::path::Path) -> (ExitCode, u64, u64) {
    let cases = match corpus::load_dir(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot load corpus at {}: {e}", dir.display());
            return (ExitCode::from(2), 0, 0);
        }
    };
    println!("replaying {} corpus case(s) from {}...", cases.len(), dir.display());
    let mut oracle = PlasmaOracle::new(core, OracleConfig::default());
    let mut failed = 0u64;
    for (path, case) in &cases {
        match corpus::replay(case, core, &mut oracle) {
            ReplayOutcome::Pass => println!("  pass  {}", path.display()),
            ReplayOutcome::Skipped(why) => println!("  skip  {} ({why})", path.display()),
            ReplayOutcome::Fail(why) => {
                eprintln!("  FAIL  {} ({why})", path.display());
                failed += 1;
            }
        }
    }
    let code = if failed > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    };
    (code, cases.len() as u64, failed)
}
