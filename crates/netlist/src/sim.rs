//! Scalar (fault-free) logic simulation of a [`Netlist`].
//!
//! Used for functional verification of generated structures and for
//! lock-step co-simulation of the gate-level CPU against the behavioural
//! instruction-set simulator. Fault simulation lives in the `fault` crate
//! and uses 64-lane bit-parallel evaluation instead.

use crate::netlist::{Net, Netlist};
use crate::NO_NET;

/// Cycle-based two-phase simulator: [`Simulator::eval`] settles
/// combinational logic, [`Simulator::clock`] advances every flip-flop.
///
/// # Example
///
/// ```
/// use netlist::NetlistBuilder;
/// use netlist::sim::Simulator;
///
/// let mut b = NetlistBuilder::new("toggler");
/// let (q, slot) = b.dff_later(false);
/// let nq = b.not(q);
/// b.dff_set(slot, nq);
/// b.output("q", q);
/// let nl = b.finish().unwrap();
///
/// let mut sim = Simulator::new(&nl);
/// sim.reset(&nl);
/// sim.eval(&nl);
/// assert_eq!(sim.output_word(&nl, "q"), 0);
/// sim.clock(&nl);
/// sim.eval(&nl);
/// assert_eq!(sim.output_word(&nl, "q"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    values: Vec<bool>,
    next_state: Vec<bool>,
}

impl Simulator {
    /// Create a simulator with all nets at 0 and flip-flops in reset state.
    pub fn new(netlist: &Netlist) -> Self {
        let mut sim = Simulator {
            values: vec![false; netlist.num_nets()],
            next_state: vec![false; netlist.dffs().len()],
        };
        sim.reset(netlist);
        sim
    }

    /// Force every flip-flop output to its reset value (synchronous reset
    /// applied externally, as the CPU testbench does at power-up).
    pub fn reset(&mut self, netlist: &Netlist) {
        for ff in netlist.dffs() {
            self.values[ff.q.index()] = ff.reset_value;
        }
    }

    /// Set a single net value (normally a primary input bit).
    #[inline]
    pub fn set_net(&mut self, net: Net, value: bool) {
        self.values[net.index()] = value;
    }

    /// Read a single net value.
    #[inline]
    pub fn net(&self, net: Net) -> bool {
        self.values[net.index()]
    }

    /// Drive a named input port with an integer value (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn set_input_word(&mut self, netlist: &Netlist, port: &str, value: u64) {
        for (i, &net) in netlist.port(port).iter().enumerate() {
            self.values[net.index()] = (value >> i) & 1 == 1;
        }
    }

    /// Read a named port as an integer (LSB first). Works for inputs too.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or is wider than 64 bits.
    pub fn output_word(&self, netlist: &Netlist, port: &str) -> u64 {
        let nets = netlist.port(port);
        assert!(nets.len() <= 64, "port `{port}` wider than 64 bits");
        let mut v = 0u64;
        for (i, &net) in nets.iter().enumerate() {
            v |= (self.values[net.index()] as u64) << i;
        }
        v
    }

    /// Read an arbitrary bus of nets as an integer (LSB first).
    ///
    /// At most 64 nets fit in the return value. Wider buses are a caller
    /// bug: bits past the 64th would be shifted out silently in release
    /// builds, so this is a `debug_assert` (matching the checked
    /// [`Simulator::output_word`] path) rather than a hot-loop branch —
    /// `word` sits inside the per-cycle bus-read path of both CPU
    /// testbenches.
    pub fn word(&self, nets: &[Net]) -> u64 {
        debug_assert!(nets.len() <= 64, "bus of {} nets wider than 64 bits", nets.len());
        let mut v = 0u64;
        for (i, &net) in nets.iter().enumerate() {
            v |= (self.values[net.index()] as u64) << (i & 63);
        }
        v
    }

    /// Settle all combinational logic (single levelized sweep).
    pub fn eval(&mut self, netlist: &Netlist) {
        self.eval_segment(netlist, netlist.topo_order());
    }

    /// Evaluate only the given gates (must be a topologically ordered
    /// subset, e.g. from [`Netlist::split_on_inputs`]).
    pub fn eval_segment(&mut self, netlist: &Netlist, order: &[u32]) {
        let gates = netlist.gates();
        for &gi in order {
            let g = &gates[gi as usize];
            let a = g.inputs[0];
            let b = g.inputs[1];
            let c = g.inputs[2];
            let av = if a == NO_NET {
                false
            } else {
                self.values[a.index()]
            };
            let bv = if b == NO_NET {
                false
            } else {
                self.values[b.index()]
            };
            let cv = if c == NO_NET {
                false
            } else {
                self.values[c.index()]
            };
            self.values[g.output.index()] = g.kind.eval(av, bv, cv);
        }
    }

    /// Settle combinational logic through a pre-lowered
    /// [`CompiledOrder`] — same results as [`Simulator::eval_segment`]
    /// on the order the program was compiled from, without re-walking
    /// `Gate` structures or re-branching on `NO_NET` every cycle.
    pub fn eval_compiled(&mut self, program: &CompiledOrder) {
        for i in 0..program.kinds.len() {
            let a = program.in0[i];
            let b = program.in1[i];
            let c = program.in2[i];
            let av = a != u32::MAX && self.values[a as usize];
            let bv = b != u32::MAX && self.values[b as usize];
            let cv = c != u32::MAX && self.values[c as usize];
            self.values[program.outs[i] as usize] = program.kinds[i].eval(av, bv, cv);
        }
    }

    /// Advance all flip-flops: `q <= d` using the currently settled values.
    pub fn clock(&mut self, netlist: &Netlist) {
        for (i, ff) in netlist.dffs().iter().enumerate() {
            self.next_state[i] = self.values[ff.d.index()];
        }
        for (i, ff) in netlist.dffs().iter().enumerate() {
            self.values[ff.q.index()] = self.next_state[i];
        }
    }

    /// Convenience: `eval` then `clock` in one call (a full cycle once the
    /// inputs for the cycle have been applied).
    pub fn step(&mut self, netlist: &Netlist) {
        self.eval(netlist);
        self.clock(netlist);
    }
}

/// A gate order lowered to a dense straight-line instruction stream for
/// [`Simulator::eval_compiled`]: one parallel array slot per gate with
/// the operand net indices pre-resolved (absent inputs become
/// `u32::MAX`, folded to constant-0 by a flag test instead of a `Net`
/// comparison). The scalar sibling of the fault crate's compiled
/// kernel; the CPU testbenches lower each evaluation segment once at
/// construction.
#[derive(Debug, Clone)]
pub struct CompiledOrder {
    kinds: Vec<crate::GateKind>,
    in0: Vec<u32>,
    in1: Vec<u32>,
    in2: Vec<u32>,
    outs: Vec<u32>,
}

impl CompiledOrder {
    /// Lower `order` (a topologically ordered gate subset, e.g. from
    /// [`Netlist::split_on_inputs`] or [`Netlist::topo_order`]).
    pub fn compile(netlist: &Netlist, order: &[u32]) -> CompiledOrder {
        let gates = netlist.gates();
        let mut p = CompiledOrder {
            kinds: Vec::with_capacity(order.len()),
            in0: Vec::with_capacity(order.len()),
            in1: Vec::with_capacity(order.len()),
            in2: Vec::with_capacity(order.len()),
            outs: Vec::with_capacity(order.len()),
        };
        let slot = |n: Net| if n == NO_NET { u32::MAX } else { n.index() as u32 };
        for &gi in order {
            let g = &gates[gi as usize];
            p.kinds.push(g.kind);
            p.in0.push(slot(g.inputs[0]));
            p.in1.push(slot(g.inputs[1]));
            p.in2.push(slot(g.inputs[2]));
            p.outs.push(g.output.index() as u32);
        }
        p
    }

    /// Number of lowered gate evaluations.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    /// A 4-bit counter: verifies sequential semantics (all DFFs clock
    /// simultaneously from settled values).
    #[test]
    fn counter_counts() {
        let mut b = NetlistBuilder::new("ctr");
        let (q, slots) = b.dff_word_later(4, 0);
        let one = b.one();
        let zero = b.zero();
        // increment: ripple through half-adders
        let mut carry = one;
        let mut next = Vec::new();
        for &bit in &q {
            next.push(b.xor2(bit, carry));
            carry = b.and2(bit, carry);
        }
        let _ = zero;
        b.dff_word_set(slots, &next);
        b.outputs("q", &q);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl);
        sim.reset(&nl);
        for expect in 0..40u64 {
            sim.eval(&nl);
            assert_eq!(sim.output_word(&nl, "q"), expect % 16);
            sim.clock(&nl);
        }
    }

    #[test]
    fn reset_values_respected() {
        let mut b = NetlistBuilder::new("rv");
        let d = b.input("d");
        let q0 = b.dff(d, false);
        let q1 = b.dff(d, true);
        b.output("q0", q0);
        b.output("q1", q1);
        let nl = b.finish().unwrap();
        let sim = Simulator::new(&nl);
        assert!(!sim.net(nl.port("q0")[0]));
        assert!(sim.net(nl.port("q1")[0]));
    }

    /// Regression for the silent >64-bit truncation: `word` and
    /// `output_word` must reject buses wider than a u64 instead of
    /// dropping the high bits.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "wider than 64 bits"))]
    fn word_rejects_buses_wider_than_64_bits() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 65);
        b.outputs("y", &a);
        let nl = b.finish().unwrap();
        let sim = Simulator::new(&nl);
        let v = sim.word(nl.port("y"));
        // Release builds skip the debug_assert; the masked shift keeps the
        // result well-defined (bit 64 folds onto bit 0) rather than UB.
        assert_eq!(v, 0);
    }

    #[test]
    #[should_panic(expected = "wider than 64 bits")]
    fn output_word_rejects_ports_wider_than_64_bits() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 70);
        b.outputs("y", &a);
        let nl = b.finish().unwrap();
        let sim = Simulator::new(&nl);
        let _ = sim.output_word(&nl, "y");
    }

    #[test]
    fn segment_eval_matches_full_eval() {
        let mut b = NetlistBuilder::new("seg");
        let a = b.inputs("a", 8);
        let late = b.inputs("late", 8);
        let na = b.not_word(&a);
        let q = b.dff_word(&late, 0);
        let mix = b.xor_word(&na, &q);
        b.outputs("na", &na);
        let qq = b.dff_word(&mix, 0);
        b.outputs("qq", &qq);
        let nl = b.finish().unwrap();
        let (early, late_seg) = nl.split_on_inputs(nl.port("late"));

        let mut s1 = Simulator::new(&nl);
        let mut s2 = Simulator::new(&nl);
        for step in 0..20u64 {
            let av = step.wrapping_mul(37) & 0xFF;
            let lv = step.wrapping_mul(91) & 0xFF;
            s1.set_input_word(&nl, "a", av);
            s1.set_input_word(&nl, "late", lv);
            s1.eval(&nl);
            s1.clock(&nl);

            s2.set_input_word(&nl, "a", av);
            s2.eval_segment(&nl, &early);
            s2.set_input_word(&nl, "late", lv);
            s2.eval_segment(&nl, &late_seg);
            s2.clock(&nl);

            assert_eq!(
                s1.output_word(&nl, "qq"),
                s2.output_word(&nl, "qq"),
                "divergence at step {step}"
            );
        }
    }

    /// The compiled straight-line program must be cycle-exact with the
    /// interpreted walk, including gates with absent (`NO_NET`) inputs.
    #[test]
    fn compiled_order_matches_interpreted_eval() {
        let mut b = NetlistBuilder::new("cmp");
        let a = b.inputs("a", 8);
        let late = b.inputs("late", 8);
        let na = b.not_word(&a); // NOT uses only input 0
        let q = b.dff_word(&late, 0);
        let mix = b.xor_word(&na, &q);
        let qq = b.dff_word(&mix, 0);
        b.outputs("na", &na);
        b.outputs("qq", &qq);
        let nl = b.finish().unwrap();
        let (early, late_seg) = nl.split_on_inputs(nl.port("late"));
        let pe = CompiledOrder::compile(&nl, &early);
        let pl = CompiledOrder::compile(&nl, &late_seg);
        assert_eq!(pe.len() + pl.len(), nl.gates().len());

        let mut s1 = Simulator::new(&nl);
        let mut s2 = Simulator::new(&nl);
        for step in 0..20u64 {
            let av = step.wrapping_mul(37) & 0xFF;
            let lv = step.wrapping_mul(91) & 0xFF;
            s1.set_input_word(&nl, "a", av);
            s1.eval_segment(&nl, &early);
            s1.set_input_word(&nl, "late", lv);
            s1.eval_segment(&nl, &late_seg);
            s1.clock(&nl);

            s2.set_input_word(&nl, "a", av);
            s2.eval_compiled(&pe);
            s2.set_input_word(&nl, "late", lv);
            s2.eval_compiled(&pl);
            s2.clock(&nl);

            assert_eq!(
                (s1.output_word(&nl, "na"), s1.output_word(&nl, "qq")),
                (s2.output_word(&nl, "na"), s2.output_word(&nl, "qq")),
                "divergence at step {step}"
            );
        }
    }
}
