//! A minimal, std-only property-testing harness exposing the subset of
//! the `proptest` crate's surface this workspace uses: the [`proptest!`]
//! macro, [`prelude::any`], range strategies, `prop_assert*` macros and
//! [`ProptestConfig`].
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched; this local crate shadows it via a workspace path
//! dependency. Sampling is deterministic: every test derives its RNG
//! stream from its own name, so failures reproduce exactly across runs
//! and machines.
//!
//! Failing cases are **shrunk** (each argument halves toward its range
//! minimum while the property keeps failing) and the minimal case is
//! persisted to a `*.proptest-regressions` file next to the test source,
//! in the same `cc <hash> # shrinks to a = 1, b = 2` format the real
//! crate uses. Persisted entries whose argument names match a property
//! are replayed *before* any fresh cases are sampled.

#![warn(missing_docs)]

/// Deterministic xorshift64* stream used to sample strategies.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed the stream from a test name (stable across runs).
    pub fn from_name(name: &str) -> Rng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Rng(h | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A source of random values of one type — the strategy abstraction.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, ordered most
    /// aggressive first (the domain minimum, then halving toward it,
    /// then the single-step neighbour). Every candidate must be strictly
    /// closer to the minimum than `value`, so greedy shrinking always
    /// terminates. The default is "cannot shrink".
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Full-range strategy for a primitive type (see [`prelude::any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` entry point: uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2; // rounds toward zero for signed types too
                    if half != 0 {
                        out.push(half);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (start, v) = (self.start, *value);
                let mut out = Vec::new();
                if v > start {
                    out.push(start);
                    let half = start + (v - start) / 2;
                    if half != start {
                        out.push(half);
                    }
                    let step = v - 1;
                    if step != start && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}
impl_range!(u8, u16, u32, u64, usize);

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
    /// Persist shrunk failures to the sibling regression file.
    pub persist: bool,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, persist: true }
    }

    /// Disable regression-file persistence (used by self-tests that
    /// exercise failing properties on purpose).
    pub fn no_persist(mut self) -> ProptestConfig {
        self.persist = false;
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, persist: true }
    }
}

/// Error type property bodies may return via `?` / `Ok(())`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Values that can round-trip through a regression file entry.
///
/// Written with `{:?}` formatting; parsed back with this trait. Only the
/// primitive types the strategies above produce are supported.
pub trait FromRegression: Sized {
    /// Parse a persisted value, `None` if malformed.
    fn parse_value(s: &str) -> Option<Self>;
}

macro_rules! impl_from_regression {
    ($($t:ty),*) => {$(
        impl FromRegression for $t {
            fn parse_value(s: &str) -> Option<$t> {
                s.trim().parse().ok()
            }
        }
    )*};
}
impl_from_regression!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Parse `text` as the value type of `_anchor`'s strategy. The strategy
/// argument only anchors type inference so replayed values get exactly
/// the sampled type.
pub fn parse_for<S: Strategy>(_anchor: &S, text: Option<&str>) -> Option<S::Value>
where
    S::Value: FromRegression,
{
    FromRegression::parse_value(text?)
}

/// Render a caught panic payload as text (assert!/prop_assert! messages).
pub fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "test body panicked".to_string()
    }
}

/// Reading and writing `*.proptest-regressions` files.
///
/// One file sits next to each test source file and accumulates one
/// `cc <hash> # shrinks to name = value, ...` line per distinct shrunk
/// failure. All properties in the file share it; an entry is replayed by
/// every property whose argument names are all present in the entry.
pub mod regression {
    use std::path::{Path, PathBuf};

    /// One persisted failing case: `name = value` assignments.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Entry {
        pairs: Vec<(String, String)>,
    }

    impl Entry {
        /// The persisted value for argument `name`, if present.
        pub fn get(&self, name: &str) -> Option<&str> {
            self.pairs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str())
        }

        /// Human-readable `a = 1, b = 2` form.
        pub fn text(&self) -> String {
            self.pairs
                .iter()
                .map(|(n, v)| format!("{n} = {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    }

    /// Locate the source file `file!()` names. Test binaries run with the
    /// package directory as CWD while `file!()` is workspace-relative, so
    /// walk up a few levels until the path resolves.
    fn resolve_source(src: &str) -> Option<PathBuf> {
        let p = Path::new(src);
        if p.exists() {
            return Some(p.to_path_buf());
        }
        let mut up = PathBuf::new();
        for _ in 0..4 {
            up.push("..");
            let cand = up.join(p);
            if cand.exists() {
                return Some(cand);
            }
        }
        None
    }

    /// The regression file shadowing source file `src` (`.rs` swapped for
    /// `.proptest-regressions`), if the source can be located.
    pub fn path_for(src: &str) -> Option<PathBuf> {
        resolve_source(src).map(|p| p.with_extension("proptest-regressions"))
    }

    fn parse_line(line: &str) -> Option<Entry> {
        let line = line.trim();
        if !line.starts_with("cc ") {
            return None;
        }
        let rest = line.split_once('#')?.1.trim();
        let rest = rest.strip_prefix("shrinks to")?.trim();
        let mut pairs = Vec::new();
        for piece in rest.split(',') {
            let (name, value) = piece.split_once('=')?;
            pairs.push((name.trim().to_string(), value.trim().to_string()));
        }
        if pairs.is_empty() {
            return None;
        }
        Some(Entry { pairs })
    }

    fn load_all(src: &str) -> Vec<Entry> {
        let Some(path) = path_for(src) else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        text.lines().filter_map(parse_line).collect()
    }

    /// Entries from `src`'s regression file carrying a value for every
    /// name in `names` — the ones a property with those arguments can
    /// replay.
    pub fn load_matching(src: &str, names: &[&str]) -> Vec<Entry> {
        load_all(src)
            .into_iter()
            .filter(|e| names.iter().all(|n| e.get(n).is_some()))
            .collect()
    }

    /// Render assignments as the `a = 1, b = 2` entry payload.
    pub fn render(assignments: &[(&str, String)]) -> String {
        assignments
            .iter()
            .map(|(n, v)| format!("{n} = {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn fnv(seed: u64, text: &str) -> u64 {
        let mut h = seed;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// Append a shrunk failing case to `src`'s regression file, creating
    /// it (with the conventional header) on first use. Duplicate entries
    /// are not re-added. Returns the file written, `None` if the source
    /// file could not be located or the write failed.
    pub fn persist(src: &str, assignments: &[(&str, String)]) -> Option<PathBuf> {
        let path = path_for(src)?;
        let body = render(assignments);
        let new_entry = parse_line(&format!("cc 0 # shrinks to {body}"))?;
        if load_all(src).contains(&new_entry) {
            return Some(path);
        }
        let mut text = if path.exists() {
            std::fs::read_to_string(&path).ok()?
        } else {
            HEADER.to_string()
        };
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        let hash = format!(
            "{:016x}{:016x}{:016x}{:016x}",
            fnv(0xcbf2_9ce4_8422_2325, &body),
            fnv(0x9e37_79b9_7f4a_7c15, &body),
            fnv(0x2545_f491_4f6c_dd1d, &body),
            fnv(0x100_0000_01b3, &body),
        );
        text.push_str(&format!("cc {hash} # shrinks to {body}\n"));
        std::fs::write(&path, text).ok()?;
        Some(path)
    }
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that first replays matching entries from the
/// sibling `*.proptest-regressions` file, then runs the body over
/// sampled inputs, shrinking and persisting any failure it finds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @expand ($cfg); $($rest)* }
    };
    (@expand ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;

                // Phase 1: replay persisted regressions whose argument
                // names cover this property's arguments. Arguments live in
                // `RefCell`s so the no-argument runner closure can be
                // re-invoked while the shrink loop (phase 2) swaps
                // candidate values in and out; failures (Err returns and
                // prop_assert! panics alike) come back as Err(text).
                let __names: &[&str] = &[$(stringify!($arg)),*];
                for __entry in $crate::regression::load_matching(file!(), __names) {
                    $(let $arg = match $crate::parse_for(&($strat), __entry.get(stringify!($arg))) {
                        ::std::option::Option::Some(v) => ::std::cell::RefCell::new(v),
                        ::std::option::Option::None => continue,
                    };)*
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                            $(let $arg = ::std::clone::Clone::clone(&*$arg.borrow());)*
                            let __r: ::std::result::Result<(), $crate::TestCaseError> =
                                (|| { $body ::std::result::Result::Ok(()) })();
                            __r
                        })) {
                            ::std::result::Result::Ok(::std::result::Result::Ok(())) =>
                                ::std::result::Result::Ok(()),
                            ::std::result::Result::Ok(::std::result::Result::Err(e)) =>
                                ::std::result::Result::Err(e.0),
                            ::std::result::Result::Err(p) =>
                                ::std::result::Result::Err($crate::panic_text(p)),
                        }
                    };
                    if let ::std::result::Result::Err(e) = __run() {
                        panic!(
                            "property {} failed on persisted regression ({}): {}",
                            stringify!($name), __entry.text(), e
                        );
                    }
                }

                // Phase 2: fresh deterministic cases.
                let mut __rng = $crate::Rng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = ::std::cell::RefCell::new(
                        $crate::Strategy::sample(&($strat), &mut __rng));)*
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                            $(let $arg = ::std::clone::Clone::clone(&*$arg.borrow());)*
                            let __r: ::std::result::Result<(), $crate::TestCaseError> =
                                (|| { $body ::std::result::Result::Ok(()) })();
                            __r
                        })) {
                            ::std::result::Result::Ok(::std::result::Result::Ok(())) =>
                                ::std::result::Result::Ok(()),
                            ::std::result::Result::Ok(::std::result::Result::Err(e)) =>
                                ::std::result::Result::Err(e.0),
                            ::std::result::Result::Err(p) =>
                                ::std::result::Result::Err($crate::panic_text(p)),
                        }
                    };
                    if __run().is_ok() {
                        continue;
                    }
                    // Shrink: greedily accept any candidate (halving each
                    // argument toward its range minimum) that still fails,
                    // until no argument can shrink further.
                    loop {
                        let mut __improved = false;
                        $(
                            if !__improved {
                                let __cur = ::std::clone::Clone::clone(&*$arg.borrow());
                                for __cand in $crate::Strategy::shrink(&($strat), &__cur) {
                                    *$arg.borrow_mut() = __cand;
                                    if __run().is_err() {
                                        __improved = true;
                                        break;
                                    }
                                    *$arg.borrow_mut() = ::std::clone::Clone::clone(&__cur);
                                }
                            }
                        )*
                        if !__improved {
                            break;
                        }
                    }
                    let __err = __run()
                        .err()
                        .unwrap_or_else(|| "shrunk case stopped failing".to_string());
                    let __assignments: ::std::vec::Vec<(&str, ::std::string::String)> =
                        ::std::vec![$(
                            (stringify!($arg), ::std::format!("{:?}", $arg.borrow()))
                        ),*];
                    let __where = if __cfg.persist {
                        match $crate::regression::persist(file!(), &__assignments) {
                            ::std::option::Option::Some(p) =>
                                ::std::format!("persisted to {}", p.display()),
                            ::std::option::Option::None =>
                                ::std::string::String::from("persistence unavailable"),
                        }
                    } else {
                        ::std::string::String::from("persistence disabled")
                    };
                    panic!(
                        "property {} failed at case {}: {}\n  minimal failing case: {}\n  {}",
                        stringify!($name), __case, __err,
                        $crate::regression::render(&__assignments), __where
                    );
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @expand ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Assert inside a property body (plain `assert!` semantics; the panic
/// is caught by the harness and drives shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property body (plain `assert_eq!` semantics;
/// the panic is caught by the harness and drives shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// The glob-import surface tests use: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_and_result_bodies_work(a in any::<u32>()) {
            let r: Result<u32, crate::TestCaseError> = Ok(a);
            let b = r?;
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::Rng::from_name("t");
        let mut b = crate::Rng::from_name("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shrink_candidates_halve_toward_minimum() {
        assert_eq!(Strategy::shrink(&crate::any::<u32>(), &100), vec![0, 50, 99]);
        assert_eq!(Strategy::shrink(&crate::any::<u32>(), &0), Vec::<u32>::new());
        assert_eq!(Strategy::shrink(&crate::any::<i32>(), &-9), vec![0, -4, -8]);
        assert_eq!(Strategy::shrink(&(3u8..17), &11), vec![3, 7, 10]);
        assert_eq!(Strategy::shrink(&(3u8..17), &3), Vec::<u8>::new());
        assert_eq!(Strategy::shrink(&crate::any::<bool>(), &true), vec![false]);
        assert_eq!(Strategy::shrink(&crate::any::<bool>(), &false), Vec::<bool>::new());
    }

    // A deliberately failing property (NOT a #[test]; invoked below under
    // catch_unwind) to check the whole shrink pipeline end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32).no_persist())]

        fn probe_fails_from_ten_up(x in 0u32..100_000) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failures_shrink_to_the_minimal_case() {
        let payload = std::panic::catch_unwind(probe_fails_from_ten_up)
            .expect_err("property must fail");
        let msg = crate::panic_text(payload);
        assert!(
            msg.contains("minimal failing case: x = 10"),
            "shrinking did not reach the boundary: {msg}"
        );
        assert!(msg.contains("persistence disabled"), "{msg}");
    }

    #[test]
    fn regression_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("probe.rs");
        std::fs::write(&src, "// placeholder\n").unwrap();
        let src = src.to_str().unwrap().to_string();

        let args = [("a", "42".to_string()), ("flag", "true".to_string())];
        let path = crate::regression::persist(&src, &args).expect("persist");
        assert!(path.ends_with("probe.proptest-regressions"));
        // Duplicate persists are dropped.
        crate::regression::persist(&src, &args).expect("re-persist");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("shrinks to a = 42, flag = true").count(), 1);
        assert!(text.starts_with("# Seeds for failure cases"));

        let entries = crate::regression::load_matching(&src, &["a", "flag"]);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("a"), Some("42"));
        assert_eq!(entries[0].get("flag"), Some("true"));
        // A property with different argument names skips the entry.
        assert!(crate::regression::load_matching(&src, &["a", "other"]).is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }
}
