//! The end-to-end evaluation flow: build the phase program, measure the
//! golden run (Table 4), fault-simulate the processor executing its own
//! self test (Table 5).

use std::path::PathBuf;

use fault::campaign::{self, CampaignHooks, CampaignResult};
use fault::coverage::{CoverageReport, CoverageTimeline};
use fault::engine::{EngineConfig, EngineKind};
use fault::model::FaultList;
use fault::sim::ParallelSim;
use fault::wide::WideSim;
use mips::iss::{Iss, Memory};
use obs::{MetricRegistry, ProfilePhase, Profiler, Progress, Tracer};
use plasma::testbench::{SelfTestBench, WideSelfTestBench};
use plasma::PlasmaCore;

use crate::cost::{CostModel, TestCost};
use crate::phases::{build_program, Phase, SelfTestProgram};
use crate::provenance::{GoldenTrace, ProvenanceReport, RoutineMap};
use crate::routines::{END_MARKER, MAILBOX};

/// Size of the self-test memory image.
pub const MEM_BYTES: usize = 64 * 1024;

/// Options controlling a flow run.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Fault-sample target; `None` simulates the complete collapsed
    /// fault list (slow but exact — used for the final tables).
    pub fault_sample: Option<usize>,
    /// Deterministic seed for sampling.
    pub seed: u64,
    /// Extra cycles granted to faulty machines beyond the golden run
    /// length (divergence almost always appears long before the end).
    pub cycle_margin: u64,
    /// Tester/CPU clock assumptions.
    pub cost_model: CostModel,
    /// Campaign worker threads; 0 resolves via
    /// [`campaign::default_threads`] (the `SBST_THREADS` environment
    /// variable, else available parallelism). Results are bit-identical
    /// at every thread count.
    pub threads: usize,
    /// Live batch-progress ticker on stderr (`--progress`).
    pub progress: bool,
    /// Write structured JSONL trace events here (`None` = tracing off,
    /// the default — disabled tracing is one branch per batch).
    pub trace_path: Option<PathBuf>,
    /// Coverage-over-time sample stride in cycles; `0` disables the
    /// timeline (the default).
    pub timeline_stride: u64,
    /// Enable the hot-loop self-profiler (`--profile`): phase wall-times
    /// land in `CampaignStats::profile`. Off by default — the timed step
    /// variant reads the clock six times per cycle.
    pub profile: bool,
    /// Publish campaign counters, per-component gate-eval counts, and
    /// coverage gauges into this registry (`--metrics-out`/`--serve`).
    pub metrics: Option<MetricRegistry>,
    /// Publish live `campaign_begin`/`batch`/`campaign_end` events onto
    /// this bus for SSE subscribers (`--serve`). Bounded drop-oldest:
    /// publishing never blocks the batch loop.
    pub events: Option<obs::EventBus>,
    /// Waveform capture (`--wave-fault`/`--wave-escapes`): after the
    /// campaign, replay the selected fault and/or the first `escapes`
    /// undetected faults with a wave probe attached and write
    /// differential VCDs (good/faulty/diff scopes) under
    /// [`fault::wave::WaveOptions::out_dir`]. `None` (the default) adds
    /// zero work — campaigns never record.
    pub wave: Option<fault::wave::WaveOptions>,
    /// Simulation engine + lane width. Defaults to the environment
    /// (`SBST_ENGINE`/`SBST_LANES`/`SBST_GATING`), which itself
    /// defaults to the compiled engine at 256 lanes. Detections are
    /// bit-identical across engines; only throughput differs.
    pub engine: EngineConfig,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            fault_sample: Some(6000),
            seed: 0xC0FFEE,
            cycle_margin: 64,
            cost_model: CostModel::default(),
            threads: 0,
            progress: false,
            trace_path: None,
            timeline_stride: 0,
            profile: false,
            metrics: None,
            events: None,
            wave: None,
            engine: EngineConfig::from_env(),
        }
    }
}

impl FlowOptions {
    /// Build the campaign hooks these options describe. `label` names
    /// the progress ticker; `total_batches` sizes it (see
    /// [`campaign::batch_count`]). A trace path that cannot be opened
    /// degrades to disabled tracing with a warning rather than failing
    /// the run.
    pub fn hooks(&self, label: &str, total_batches: u64) -> CampaignHooks {
        let tracer = match &self.trace_path {
            Some(p) => Tracer::to_path(p).unwrap_or_else(|e| {
                eprintln!("warning: cannot open trace file {}: {e}", p.display());
                Tracer::disabled()
            }),
            None => Tracer::disabled(),
        };
        CampaignHooks {
            tracer,
            progress: self.progress.then(|| Progress::new(label, total_batches)),
            profiler: if self.profile {
                Profiler::new()
            } else {
                Profiler::disabled()
            },
            metrics: self.metrics.clone(),
            events: self.events.clone(),
        }
    }
}

/// Publish the flow-level metrics a finished campaign implies: static
/// per-component gate-eval attribution (every simulated cycle evaluates
/// every gate once, across all 64 lanes) and coverage gauges.
fn publish_flow_metrics(
    registry: &MetricRegistry,
    core: &PlasmaCore,
    campaign: &CampaignResult,
    coverage: &CoverageReport,
) {
    let cycles = campaign.stats.cycles_simulated;
    for s in core.netlist().component_stats() {
        registry
            .counter(
                "sbst_gate_evals_total",
                "gate evaluations attributed to a component (gates x simulated cycles, 64 lanes each)",
                &[("component", s.name.as_str())],
            )
            .inc(s.gates as u64 * cycles);
    }
    registry
        .gauge(
            "sbst_coverage_pct",
            "weighted fault coverage of the last flow run, percent",
            &[],
        )
        .set(coverage.overall_pct);
    for c in &coverage.components {
        registry
            .gauge(
                "sbst_component_coverage_pct",
                "weighted fault coverage per component, percent",
                &[("component", c.name.as_str())],
            )
            .set(c.coverage_pct);
    }
}

/// The result of one flow run: everything the paper's Tables 4 and 5
/// report for one phase.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The generated self-test program.
    pub selftest: SelfTestProgram,
    /// Golden execution length in clock cycles (Table 4).
    pub golden_cycles: u64,
    /// Tester-time cost (download + execution).
    pub cost: TestCost,
    /// Raw campaign result.
    pub campaign: CampaignResult,
    /// Per-component coverage (Table 5).
    pub coverage: CoverageReport,
    /// Detection provenance: which routine/instruction was executing
    /// when each fault was first observed (computed offline from the
    /// golden ISS trace — see [`crate::provenance`]).
    pub provenance: ProvenanceReport,
    /// Coverage-over-time samples, present when
    /// [`FlowOptions::timeline_stride`] is nonzero.
    pub timeline: Option<CoverageTimeline>,
    /// Differential waveform dumps written by this run (empty unless
    /// [`FlowOptions::wave`] was set).
    pub waves: Vec<WaveArtifact>,
}

/// One differential VCD written by a flow run.
#[derive(Debug, Clone)]
pub struct WaveArtifact {
    /// The replayed fault, as [`fault::Fault::describe`].
    pub fault: String,
    /// Where the VCD landed.
    pub path: PathBuf,
    /// Detection cycle (trigger), `None` for an escape captured to the
    /// budget horizon.
    pub detected_at: Option<u64>,
}

/// Measure the golden run length of a self-test program on the ISS.
///
/// Any program following the mailbox convention (storing [`END_MARKER`]
/// to [`MAILBOX`] when done) can be measured — the baselines reuse this.
///
/// # Panics
///
/// Panics if the program never stores its end marker within a generous
/// bound — that would be a broken self-test program, not a data error.
pub fn golden_cycles_of(program: &mips::Program) -> u64 {
    let mut mem = Memory::new(MEM_BYTES);
    mem.load_program(program);
    let mut cpu = Iss::new();
    let trace = cpu.run_until_store(&mut mem, MAILBOX, END_MARKER, 2_000_000);
    let last = trace.last().expect("nonempty trace");
    assert!(
        last.we && last.addr == MAILBOX && last.wdata == END_MARKER,
        "self-test program never reached its end marker"
    );
    trace.len() as u64
}

/// [`golden_cycles_of`] for a generated phase program.
pub fn golden_cycles(selftest: &SelfTestProgram) -> u64 {
    golden_cycles_of(&selftest.program)
}

/// Prepare the (possibly sampled) collapsed fault list of a core.
pub fn fault_list(core: &PlasmaCore, opts: &FlowOptions) -> FaultList {
    let full = FaultList::extract(core.netlist()).collapsed(core.netlist());
    match opts.fault_sample {
        Some(n) => full.sample_stratified(n, opts.seed),
        None => full,
    }
}

/// Run a fault campaign of an arbitrary program over `faults` on `core`,
/// sharded over `threads` worker threads (0 = auto, see
/// [`campaign::default_threads`]). Every worker gets its own simulator
/// clone and testbench; the result is bit-identical to a serial run.
pub fn run_campaign_of_threads(
    core: &PlasmaCore,
    program: &mips::Program,
    faults: &FaultList,
    budget: u64,
    threads: usize,
) -> CampaignResult {
    run_campaign_of_hooks(core, program, faults, budget, threads, &CampaignHooks::none())
}

/// [`run_campaign_of_threads`] with observability hooks (trace events +
/// live progress), on the environment-selected engine. Detections are
/// bit-identical with or without hooks.
pub fn run_campaign_of_hooks(
    core: &PlasmaCore,
    program: &mips::Program,
    faults: &FaultList,
    budget: u64,
    threads: usize,
    hooks: &CampaignHooks,
) -> CampaignResult {
    run_campaign_of_engine(
        core,
        program,
        faults,
        budget,
        threads,
        hooks,
        EngineConfig::from_env(),
    )
}

/// The engine-dispatching campaign entry: interpreted 64-lane reference
/// or compiled multi-word kernel, per `engine`. Detections are
/// bit-identical across engines, lane widths, and thread counts — only
/// throughput (and batch geometry in the stats) differs.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_of_engine(
    core: &PlasmaCore,
    program: &mips::Program,
    faults: &FaultList,
    budget: u64,
    threads: usize,
    hooks: &CampaignHooks,
    engine: EngineConfig,
) -> CampaignResult {
    let [early, late] = core.segments();
    let segments = [early.to_vec(), late.to_vec()];
    match engine.kind {
        EngineKind::Interp => {
            let sim = ParallelSim::with_segments(core.netlist(), &segments);
            // Each worker's bench shares the hooks' profiler handle, so
            // the per-cycle phases land in the same profile as the
            // runner's patch/reset (a disabled handle keeps the plain
            // step path).
            let factory = || {
                SelfTestBench::new(core, program, MEM_BYTES, budget)
                    .with_profiler(hooks.profiler.clone())
            };
            campaign::run_parallel_with(&sim, faults, &factory, threads, hooks)
        }
        EngineKind::Compiled => {
            let before_compile = hooks.profiler.snapshot();
            let compile_t0 = std::time::Instant::now();
            let kernel = {
                // Cache hits cost a fingerprint walk + map probe; misses
                // the full lowering pass. Either way it's this phase.
                let _compile = hooks.profiler.scope(ProfilePhase::Compile);
                fault::kernel::compile_cached(core.netlist(), &segments)
            };
            if let Some(reg) = &hooks.metrics {
                reg.counter(
                    "sbst_kernel_compile_ns_total",
                    "Wall time spent in compile_cached (lowering or cache probe)",
                    &[],
                )
                .inc(compile_t0.elapsed().as_nanos() as u64);
                fault::kernel::export_cache_metrics(reg);
            }
            // The runner's profile window starts after this point, so
            // fold the lowering cost back into the reported profile.
            let compile_delta = hooks.profiler.snapshot().since(&before_compile);
            let proto = WideSim::new(kernel, engine.lane_words, engine.gating);
            let factory = || {
                WideSelfTestBench::new(core, program, MEM_BYTES, budget, engine.lane_words)
                    .with_profiler(hooks.profiler.clone())
            };
            let mut result =
                campaign::run_parallel_wide_with(&proto, faults, &factory, threads, hooks);
            result.stats.profile.absorb(&compile_delta);
            result
        }
    }
}

/// [`run_campaign_of_threads`] with auto thread count.
pub fn run_campaign_of(
    core: &PlasmaCore,
    program: &mips::Program,
    faults: &FaultList,
    budget: u64,
) -> CampaignResult {
    run_campaign_of_threads(core, program, faults, budget, 0)
}

/// [`run_campaign_of_threads`] for a generated phase program.
pub fn run_campaign_threads(
    core: &PlasmaCore,
    selftest: &SelfTestProgram,
    faults: &FaultList,
    budget: u64,
    threads: usize,
) -> CampaignResult {
    run_campaign_of_threads(core, &selftest.program, faults, budget, threads)
}

/// [`run_campaign_of`] for a generated phase program.
pub fn run_campaign(
    core: &PlasmaCore,
    selftest: &SelfTestProgram,
    faults: &FaultList,
    budget: u64,
) -> CampaignResult {
    run_campaign_of(core, &selftest.program, faults, budget)
}

/// Replay one fault of a program with waveform capture (lane 0 good,
/// lane 1 faulty — see [`plasma::testbench::capture_fault_wave`]) and
/// write the differential VCD as
/// `<out_dir>/WAVE_<tag>_<fault-desc>.vcd`. The VCD `$comment` records
/// the fault, verdict, and window geometry.
pub fn write_fault_wave(
    core: &PlasmaCore,
    program: &mips::Program,
    budget: u64,
    f: fault::Fault,
    wave: &fault::wave::WaveOptions,
    tag: &str,
) -> Result<WaveArtifact, String> {
    let captured =
        plasma::testbench::capture_fault_wave(core, program, MEM_BYTES, budget, f, wave)?;
    let desc = f.describe();
    let path = wave.out_dir.join(fault::wave::wave_file_name(tag, &desc));
    let comment = match captured.trigger {
        Some(t) => format!(
            "fault {desc} detected at cycle {t}; window pre={} post={}",
            wave.pre, wave.post
        ),
        None => format!("fault {desc} escaped; horizon window of {} cycles", wave.depth),
    };
    captured
        .write_file(&path, &comment)
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(WaveArtifact {
        fault: desc,
        path,
        detected_at: captured.trigger,
    })
}

/// Capture the waves [`FlowOptions::wave`] asks for: the named fault
/// (tag `fault`) and/or the first `escapes` undetected faults of the
/// campaign (tag `escape`). Capture failures degrade to warnings — a
/// broken wave dump should never kill a finished campaign.
fn capture_flow_waves(
    core: &PlasmaCore,
    program: &mips::Program,
    budget: u64,
    faults: &FaultList,
    campaign: &CampaignResult,
    w: &fault::wave::WaveOptions,
) -> Vec<WaveArtifact> {
    let mut waves = Vec::new();
    if let Some(id) = &w.fault {
        match fault::wave::find_fault(faults, id) {
            Some(i) => match write_fault_wave(core, program, budget, faults.faults[i], w, "fault") {
                Ok(a) => waves.push(a),
                Err(e) => eprintln!("warning: wave capture for `{id}` failed: {e}"),
            },
            None => eprintln!("warning: wave fault `{id}` not in the (sampled) fault list"),
        }
    }
    let mut captured = 0usize;
    for (i, d) in campaign.detections.iter().enumerate() {
        if captured >= w.escapes {
            break;
        }
        if !d.is_detected() {
            match write_fault_wave(core, program, budget, faults.faults[i], w, "escape") {
                Ok(a) => waves.push(a),
                Err(e) => eprintln!("warning: escape wave capture failed: {e}"),
            }
            captured += 1;
        }
    }
    waves
}

/// The full flow for one phase: generate, assemble, measure, grade, and
/// attribute — every detection is joined against the golden ISS trace to
/// recover the executing routine (see [`crate::provenance`]).
pub fn run_flow(core: &PlasmaCore, phase: Phase, opts: &FlowOptions) -> FlowReport {
    let selftest = build_program(phase).expect("phase program must assemble");
    let golden = golden_cycles(&selftest);
    let faults = fault_list(core, opts);
    let hooks = opts.hooks(
        phase.name(),
        campaign::batch_count_lanes(&faults, opts.engine.lanes()),
    );
    let campaign = run_campaign_of_engine(
        core,
        &selftest.program,
        &faults,
        golden + opts.cycle_margin,
        opts.threads,
        &hooks,
        opts.engine,
    );
    let coverage = CoverageReport::from_campaign(core.netlist(), &campaign);
    if let Some(reg) = &opts.metrics {
        publish_flow_metrics(reg, core, &campaign, &coverage);
    }
    let cost = opts.cost_model.cost(selftest.size_words(), golden);
    let trace = GoldenTrace::record(&selftest.program, MEM_BYTES, golden);
    let map = RoutineMap::of_selftest(&selftest);
    let provenance = ProvenanceReport::from_campaign(core.netlist(), &campaign, &trace, &map);
    let timeline = (opts.timeline_stride > 0)
        .then(|| CoverageTimeline::from_campaign(core.netlist(), &campaign, opts.timeline_stride));
    let waves = match &opts.wave {
        Some(w) => capture_flow_waves(
            core,
            &selftest.program,
            golden + opts.cycle_margin,
            &faults,
            &campaign,
            w,
        ),
        None => Vec::new(),
    };
    FlowReport {
        selftest,
        golden_cycles: golden,
        cost,
        campaign,
        coverage,
        provenance,
        timeline,
        waves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma::PlasmaConfig;

    /// A small-sample smoke run of the whole flow. The full-list runs
    /// live in the bench harness; this keeps the test suite fast while
    /// still exercising generation → assembly → golden run → campaign →
    /// report end to end.
    #[test]
    fn phase_a_flow_smoke() {
        let core = PlasmaCore::build(PlasmaConfig::default());
        let opts = FlowOptions {
            fault_sample: Some(700),
            timeline_stride: 500,
            profile: true,
            metrics: Some(MetricRegistry::new()),
            // Pin the engine so the Compile-phase assertion below holds
            // regardless of SBST_ENGINE in the environment.
            engine: EngineConfig::compiled(256),
            ..Default::default()
        };
        let report = run_flow(&core, Phase::A, &opts);
        // The profiler attributed time to the per-cycle phases...
        let profile = &report.campaign.stats.profile;
        assert!(!profile.is_empty(), "profile empty despite profile: true");
        assert!(profile.count(obs::ProfilePhase::Overlay) > 0);
        assert!(profile.count(obs::ProfilePhase::EvalEarly) > 0);
        // ...including the one-time kernel lowering...
        assert!(profile.count(obs::ProfilePhase::Compile) > 0);
        assert_eq!(report.campaign.stats.engine, "compiled");
        assert_eq!(report.campaign.stats.lanes, 256);
        // ...and the registry carries campaign + flow metrics.
        let text = opts.metrics.as_ref().unwrap().to_prometheus();
        assert!(text.contains("sbst_batches_total"), "{text}");
        assert!(text.contains("sbst_gate_evals_total{component="), "{text}");
        assert!(text.contains("sbst_coverage_pct"), "{text}");
        assert!(report.golden_cycles > 1000);
        assert!(
            report.coverage.overall_pct > 75.0,
            "implausibly low sampled coverage: {:.2}%\n{}",
            report.coverage.overall_pct,
            report.coverage.to_table()
        );
        // Functional components must be well covered by Phase A.
        let regf = report.coverage.component("RegF").unwrap();
        assert!(regf.coverage_pct > 85.0, "RegF {:.2}%", regf.coverage_pct);
        // Provenance accounts for every weighted detection, and the
        // inline register-file march detects a nontrivial share.
        assert_eq!(
            report.provenance.total_detected(),
            report.coverage.total_detected,
            "provenance lost detections\n{}",
            report.provenance.to_table()
        );
        let main = report
            .provenance
            .routines
            .iter()
            .find(|r| r.routine == "main")
            .unwrap();
        assert!(main.detected > 0, "inline march attributed nothing");
        // The timeline's last sample agrees with the final report.
        let tl = report.timeline.as_ref().unwrap();
        assert!((tl.overall.last().unwrap() - report.coverage.overall_pct).abs() < 1e-9);
    }

    /// The observatory must not perturb the campaign, and its sampled
    /// series must land on the same final values at every thread count
    /// — only the timestamps may differ. Runs the same flow at 1 and 4
    /// workers with a registry + timeline + event bus attached and
    /// compares the deterministic counters' last samples.
    #[test]
    fn timeline_samples_are_thread_count_invariant() {
        let core = PlasmaCore::build(PlasmaConfig::default());
        let run = |threads: usize| {
            let reg = MetricRegistry::new();
            let tl = obs::Timeline::new(reg.clone(), 64);
            let opts = FlowOptions {
                fault_sample: Some(400),
                threads,
                metrics: Some(reg),
                events: Some(obs::EventBus::new(64)),
                engine: EngineConfig::compiled(256),
                ..Default::default()
            };
            let report = run_flow(&core, Phase::A, &opts);
            tl.sample();
            (report, tl)
        };
        let (r1, tl1) = run(1);
        let (r4, tl4) = run(4);
        assert_eq!(
            r1.coverage.overall_pct, r4.coverage.overall_pct,
            "coverage depends on thread count"
        );
        for name in [
            "sbst_batches_total",
            "sbst_cycles_total",
            "sbst_faults_detected_total",
            "sbst_kernel_compile_ns_total", // present, value timing-dependent
        ] {
            assert!(
                tl1.last_value(name, "{}").is_some(),
                "{name} missing from the threads=1 timeline"
            );
        }
        for name in [
            "sbst_batches_total",
            "sbst_cycles_total",
            "sbst_faults_detected_total",
        ] {
            assert_eq!(
                tl1.last_value(name, "{}"),
                tl4.last_value(name, "{}"),
                "{name} differs across thread counts"
            );
        }
    }
}
