//! Pseudorandom software-based self-test in the style of Chen & Dey
//! \[6\].
//!
//! Each component gets a *self-test signature* — an LFSR seed plus a
//! pattern count. The self-test program first runs a **test generation
//! routine**: a software-emulated 32-bit Galois LFSR expands every
//! signature into a pattern buffer in on-chip memory. **Application
//! routines** then feed the buffered patterns to the component under test
//! and compact the responses into a software MISR whose final value is
//! stored to memory (the bus-observable response).
//!
//! The structure mirrors \[6\] faithfully enough to reproduce the paper's
//! cost argument: pattern expansion plus pseudorandom application costs
//! far more cycles and on-chip memory than the deterministic routines,
//! for comparable or lower coverage.

use std::fmt::Write as _;

use mips::asm::{assemble, AsmError, Program};
use sbst::routines::{END_MARKER, MAILBOX, RESP_BASE};

/// Taps of the 32-bit Galois LFSR (maximal-length polynomial
/// `x^32 + x^22 + x^2 + x + 1`).
pub const TAPS: u32 = 0x8020_0003;

/// On-chip buffer the expanded patterns are written to.
pub const PATTERN_BUFFER: u32 = 0x7000;

/// One step of the Galois LFSR — the bit-exact software model of the
/// assembly routine the program runs on-chip.
pub fn lfsr_next(x: u32) -> u32 {
    let lsb = x & 1;
    let shifted = x >> 1;
    if lsb == 1 {
        shifted ^ TAPS
    } else {
        shifted
    }
}

/// A component self-test signature: what the tester downloads instead of
/// patterns.
#[derive(Debug, Clone, Copy)]
pub struct Signature {
    /// LFSR seed.
    pub seed: u32,
    /// Number of 32-bit patterns to expand.
    pub count: u32,
}

/// Configuration of the pseudorandom self-test.
#[derive(Debug, Clone)]
pub struct LfsrConfig {
    /// Patterns expanded for the ALU (pairs are drawn consecutively).
    pub alu_patterns: u32,
    /// Patterns for the shifter.
    pub shift_patterns: u32,
    /// Patterns for the register file.
    pub regfile_patterns: u32,
    /// Pattern pairs for the multiplier/divider.
    pub muldiv_patterns: u32,
    /// Base LFSR seed.
    pub seed: u32,
}

impl Default for LfsrConfig {
    fn default() -> Self {
        LfsrConfig {
            alu_patterns: 128,
            shift_patterns: 64,
            regfile_patterns: 64,
            muldiv_patterns: 32,
            seed: 0xACE1_2B4D,
        }
    }
}

impl LfsrConfig {
    /// Total number of expanded 32-bit patterns (the on-chip memory the
    /// approach needs beyond the program itself).
    pub fn total_patterns(&self) -> u32 {
        self.alu_patterns + self.shift_patterns + self.regfile_patterns + 2 * self.muldiv_patterns
    }
}

/// The built pseudorandom self-test.
#[derive(Debug, Clone)]
pub struct LfsrSelfTest {
    /// Assembly source.
    pub source: String,
    /// Assembled image.
    pub program: Program,
    /// On-chip pattern-buffer footprint in bytes.
    pub buffer_bytes: u32,
}

/// Build the complete pseudorandom self-test program.
///
/// # Errors
///
/// Returns an assembly error only if the generator itself is broken
/// (covered by tests).
pub fn build_program(cfg: &LfsrConfig) -> Result<LfsrSelfTest, AsmError> {
    let mut src = String::new();
    let total = cfg.total_patterns();

    // ---- test generation routine: expand the signatures ----------------
    // $s0 = buffer pointer, $s1 = remaining count, $a0 = LFSR state,
    // $t2 = taps.
    let _ = writeln!(src, "# software LFSR expansion (test generation program)");
    let _ = writeln!(src, "        li   $a0, 0x{:x}", cfg.seed);
    let _ = writeln!(src, "        li   $t2, 0x{TAPS:x}");
    let _ = writeln!(src, "        li   $s0, 0x{PATTERN_BUFFER:x}");
    let _ = writeln!(src, "        li   $s1, {total}");
    let _ = writeln!(src, "expand:");
    let _ = writeln!(src, "        andi $t1, $a0, 1");
    let _ = writeln!(src, "        srl  $a0, $a0, 1");
    let _ = writeln!(src, "        beqz $t1, expand_noxor");
    let _ = writeln!(src, "        nop");
    let _ = writeln!(src, "        xor  $a0, $a0, $t2");
    let _ = writeln!(src, "expand_noxor:");
    let _ = writeln!(src, "        sw   $a0, 0($s0)");
    let _ = writeln!(src, "        addiu $s0, $s0, 4");
    let _ = writeln!(src, "        addiu $s1, $s1, -1");
    let _ = writeln!(src, "        bnez $s1, expand");
    let _ = writeln!(src, "        nop");

    // ---- application routines ------------------------------------------
    // Responses are MISR-compacted into $s3 (rotate-xor), stored per
    // routine.
    let _ = writeln!(src, "        li   $s2, 0x{RESP_BASE:x}");
    let mut buf_off = 0u32;

    // ALU application: consecutive pattern pairs through all eight ops.
    let _ = writeln!(src, "# ALU application");
    let _ = writeln!(src, "        li   $s3, 0");
    let _ = writeln!(src, "        li   $s0, 0x{:x}", PATTERN_BUFFER + buf_off);
    let _ = writeln!(src, "        li   $s1, {}", cfg.alu_patterns / 2);
    let _ = writeln!(src, "alu_app:");
    let _ = writeln!(src, "        lw   $a0, 0($s0)");
    let _ = writeln!(src, "        lw   $a1, 4($s0)");
    for op in ["addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"] {
        let _ = writeln!(src, "        {op} $v0, $a0, $a1");
        misr(&mut src);
    }
    let _ = writeln!(src, "        addiu $s0, $s0, 8");
    let _ = writeln!(src, "        addiu $s1, $s1, -1");
    let _ = writeln!(src, "        bnez $s1, alu_app");
    let _ = writeln!(src, "        nop");
    let _ = writeln!(src, "        sw   $s3, 0($s2)");
    buf_off += 4 * cfg.alu_patterns;

    // Shifter application: data word + amount word per step.
    let _ = writeln!(src, "# shifter application");
    let _ = writeln!(src, "        li   $s3, 0");
    let _ = writeln!(src, "        li   $s0, 0x{:x}", PATTERN_BUFFER + buf_off);
    let _ = writeln!(src, "        li   $s1, {}", cfg.shift_patterns / 2);
    let _ = writeln!(src, "bsh_app:");
    let _ = writeln!(src, "        lw   $a0, 0($s0)");
    let _ = writeln!(src, "        lw   $a1, 4($s0)");
    for op in ["sllv", "srlv", "srav"] {
        let _ = writeln!(src, "        {op} $v0, $a0, $a1");
        misr(&mut src);
    }
    let _ = writeln!(src, "        addiu $s0, $s0, 8");
    let _ = writeln!(src, "        addiu $s1, $s1, -1");
    let _ = writeln!(src, "        bnez $s1, bsh_app");
    let _ = writeln!(src, "        nop");
    let _ = writeln!(src, "        sw   $s3, 4($s2)");
    buf_off += 4 * cfg.shift_patterns;

    // Register-file application: fill a register window from the buffer,
    // read it back through both operand paths.
    let _ = writeln!(src, "# register file application");
    let _ = writeln!(src, "        li   $s3, 0");
    let _ = writeln!(src, "        li   $s0, 0x{:x}", PATTERN_BUFFER + buf_off);
    let _ = writeln!(src, "        li   $s1, {}", cfg.regfile_patterns / 8);
    let _ = writeln!(src, "rf_app:");
    for (k, r) in [8u8, 9, 10, 11, 12, 13, 14, 15].iter().enumerate() {
        let _ = writeln!(src, "        lw   ${r}, {}($s0)", 4 * k);
    }
    for r in [8u8, 9, 10, 11, 12, 13, 14, 15] {
        let _ = writeln!(src, "        or   $v0, ${r}, $zero");
        misr(&mut src);
    }
    let _ = writeln!(src, "        addiu $s0, $s0, 32");
    let _ = writeln!(src, "        addiu $s1, $s1, -1");
    let _ = writeln!(src, "        bnez $s1, rf_app");
    let _ = writeln!(src, "        nop");
    let _ = writeln!(src, "        sw   $s3, 8($s2)");
    buf_off += 4 * cfg.regfile_patterns;

    // Multiplier/divider application.
    let _ = writeln!(src, "# multiply/divide application");
    let _ = writeln!(src, "        li   $s3, 0");
    let _ = writeln!(src, "        li   $s0, 0x{:x}", PATTERN_BUFFER + buf_off);
    let _ = writeln!(src, "        li   $s1, {}", cfg.muldiv_patterns);
    let _ = writeln!(src, "md_app:");
    let _ = writeln!(src, "        lw   $a0, 0($s0)");
    let _ = writeln!(src, "        lw   $a1, 4($s0)");
    for op in ["mult", "divu"] {
        let _ = writeln!(src, "        {op} $a0, $a1");
        let _ = writeln!(src, "        mflo $v0");
        misr(&mut src);
        let _ = writeln!(src, "        mfhi $v0");
        misr(&mut src);
    }
    let _ = writeln!(src, "        addiu $s0, $s0, 8");
    let _ = writeln!(src, "        addiu $s1, $s1, -1");
    let _ = writeln!(src, "        bnez $s1, md_app");
    let _ = writeln!(src, "        nop");
    let _ = writeln!(src, "        sw   $s3, 12($s2)");

    // ---- end marker --------------------------------------------------------
    let _ = writeln!(src, "        li   $k1, 0x{END_MARKER:x}");
    let _ = writeln!(src, "        sw   $k1, 0x{MAILBOX:x}($zero)");
    let _ = writeln!(src, "pr_done:");
    let _ = writeln!(src, "        b    pr_done");
    let _ = writeln!(src, "        nop");

    let program = assemble(&src)?;
    Ok(LfsrSelfTest {
        source: src,
        program,
        buffer_bytes: 4 * total,
    })
}

fn misr(src: &mut String) {
    // sig = rotl(sig, 1) ^ response
    let _ = writeln!(src, "        sll  $t8, $s3, 1");
    let _ = writeln!(src, "        srl  $t9, $s3, 31");
    let _ = writeln!(src, "        or   $s3, $t8, $t9");
    let _ = writeln!(src, "        xor  $s3, $s3, $v0");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips::iss::{Iss, Memory};

    #[test]
    fn lfsr_model_is_maximal_enough() {
        // No short cycles in the first 100k steps from the default seed.
        let mut x = LfsrConfig::default().seed;
        let start = x;
        for i in 0..100_000u32 {
            x = lfsr_next(x);
            assert_ne!(x, 0, "LFSR died");
            assert!(!(x == start && i < 99_999), "short cycle at {i}");
        }
    }

    #[test]
    fn program_expands_exactly_the_model_sequence() {
        let cfg = LfsrConfig::default();
        let st = build_program(&cfg).unwrap();
        let mut mem = Memory::new(64 * 1024);
        mem.load_program(&st.program);
        let mut cpu = Iss::new();
        let trace = cpu.run_until_store(&mut mem, MAILBOX, END_MARKER, 500_000);
        assert!(trace.last().unwrap().we, "program must terminate");
        // Check the buffer against the software model.
        let mut x = cfg.seed;
        for k in 0..cfg.total_patterns() {
            x = lfsr_next(x);
            assert_eq!(
                mem.read_word(PATTERN_BUFFER + 4 * k),
                x,
                "pattern {k} mismatch"
            );
        }
        // MISR signatures must have been stored (nonzero with
        // overwhelming probability).
        assert_ne!(mem.read_word(RESP_BASE), 0);
        assert_ne!(mem.read_word(RESP_BASE + 4), 0);
    }

    #[test]
    fn execution_dwarfs_the_deterministic_program() {
        let st = build_program(&LfsrConfig::default()).unwrap();
        let cycles = sbst::flow::golden_cycles_of(&st.program);
        // The deterministic Phase A+B runs in ~7k cycles; the
        // pseudorandom expansion + application alone far exceeds it.
        assert!(
            cycles > 10_000,
            "expected expensive pseudorandom run, got {cycles}"
        );
    }
}
