//! Minimal live metrics endpoint: a std-`TcpListener` HTTP/1.0 server
//! good enough for `curl` and a Prometheus scraper during long
//! campaigns. No dependencies, one thread, one connection at a time —
//! scrape traffic, not serving traffic.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition 0.0.4
//! * `GET /json`    — the registry's JSON snapshot
//! * anything else  — 404 with a route listing

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};

use crate::registry::MetricRegistry;

/// Handle to a running metrics server.
pub struct MetricServer {
    addr: SocketAddr,
}

impl MetricServer {
    /// The address the server actually bound (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serve `registry` on `127.0.0.1:port` from a detached daemon thread.
/// Pass port 0 to let the OS pick; read it back from
/// [`MetricServer::addr`]. The thread lives until process exit — the
/// bins that use this serve for the duration of the run anyway.
pub fn serve(registry: MetricRegistry, port: u16) -> std::io::Result<MetricServer> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    std::thread::Builder::new()
        .name("obs-serve".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                // Read until the end of the request headers; a client's
                // `write!` may arrive as several small segments.
                let mut buf = [0u8; 2048];
                let mut n = 0usize;
                while n < buf.len() && !buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf[n..]) {
                        Ok(0) | Err(_) => break,
                        Ok(m) => n += m,
                    }
                }
                let request = String::from_utf8_lossy(&buf[..n]);
                let path = request
                    .lines()
                    .next()
                    .and_then(|l| l.split_whitespace().nth(1))
                    .unwrap_or("/");
                let (status, ctype, body) = match path {
                    "/metrics" => (
                        "200 OK",
                        "text/plain; version=0.0.4; charset=utf-8",
                        registry.to_prometheus(),
                    ),
                    "/json" => (
                        "200 OK",
                        "application/json",
                        serde_json::to_string_pretty(&registry.snapshot())
                            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
                    ),
                    _ => (
                        "404 Not Found",
                        "text/plain; charset=utf-8",
                        "routes: /metrics (Prometheus text), /json (snapshot)\n".to_string(),
                    ),
                };
                let _ = write!(
                    stream,
                    "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
            }
        })?;
    Ok(MetricServer { addr })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json() {
        let reg = MetricRegistry::new();
        reg.counter("requests_total", "requests seen", &[]).inc(7);
        let srv = serve(reg, 0).unwrap();
        let text = get(srv.addr(), "/metrics");
        assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
        assert!(text.contains("requests_total 7"), "{text}");
        let json = get(srv.addr(), "/json");
        assert!(json.contains("application/json"), "{json}");
        assert!(json.contains("requests_total"), "{json}");
        let missing = get(srv.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }
}
