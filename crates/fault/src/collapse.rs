//! Structural fault-equivalence collapsing.
//!
//! Two faults are *equivalent* when every test detecting one detects the
//! other; only one representative per equivalence class needs simulating.
//! The classic gate-local rules are applied, chained through a union-find:
//!
//! 1. **Buffer/inverter**: the input-pin fault is equivalent to the output
//!    stem fault of the same (buffer) or opposite (inverter) polarity.
//! 2. **Controlling value**: for an AND/NAND/OR/NOR gate with controlling
//!    input value *c*, every input-pin stuck-at-*c* fault is equivalent to
//!    the output stem stuck at the gate's response to *c*.
//! 3. **Fanout-free branch**: a gate-input-pin (or flip-flop D-pin) fault
//!    on a net with fanout one is equivalent to that net's stem fault.
//! 4. **Flip-flop transparency**: a D-pin fault is equivalent to the Q
//!    stem fault of the same polarity (the storage cell is a buffer with a
//!    one-cycle delay; the faults differ only before the first clock
//!    edge).
//!
//! Dominance collapsing (a strictly weaker relation) is deliberately *not*
//! applied, matching the conservative behaviour of commercial tools'
//! default equivalence-only mode.

use std::collections::HashMap;

use netlist::{GateKind, Netlist};

use crate::model::{Fault, FaultList, FaultSite, Polarity};

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Union keeping the *smaller* index as root (stems are enumerated
    /// before pins, so class representatives prefer stem faults).
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
    }
}

/// Build the structural-equivalence union-find over `list` (rules 1–4
/// from the module docs).
fn build_equivalence(netlist: &Netlist, list: &FaultList) -> UnionFind {
    let index: HashMap<Fault, u32> = list
        .faults
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, i as u32))
        .collect();
    let id = |site: FaultSite, polarity: Polarity| -> Option<u32> {
        index.get(&Fault { site, polarity }).copied()
    };
    let mut uf = UnionFind::new(list.faults.len());
    let join = |uf: &mut UnionFind, a: Option<u32>, b: Option<u32>| {
        if let (Some(x), Some(y)) = (a, b) {
            uf.union(x, y);
        }
    };

    let fanout = netlist.fanout_counts();

    for (gi, g) in netlist.gates().iter().enumerate() {
        let gi = gi as u32;
        let out = FaultSite::Stem(g.output);
        match g.kind {
            GateKind::Buf => {
                for p in [Polarity::StuckAt0, Polarity::StuckAt1] {
                    join(
                        &mut uf,
                        id(FaultSite::Pin { gate: gi, pin: 0 }, p),
                        id(out, p),
                    );
                }
            }
            GateKind::Not => {
                for p in [Polarity::StuckAt0, Polarity::StuckAt1] {
                    join(
                        &mut uf,
                        id(FaultSite::Pin { gate: gi, pin: 0 }, p),
                        id(out, p.flip()),
                    );
                }
            }
            _ => {
                if let Some(c) = g.kind.controlling_value() {
                    let c_pol = if c {
                        Polarity::StuckAt1
                    } else {
                        Polarity::StuckAt0
                    };
                    // Output response when any input is at the controlling
                    // value.
                    let resp = g.kind.eval(c, c, c);
                    let resp_pol = if resp {
                        Polarity::StuckAt1
                    } else {
                        Polarity::StuckAt0
                    };
                    for pin in 0..g.kind.arity() as u8 {
                        join(
                            &mut uf,
                            id(FaultSite::Pin { gate: gi, pin }, c_pol),
                            id(out, resp_pol),
                        );
                    }
                }
            }
        }
        // Fanout-free branches fold into their stems.
        for (pin, net) in g.used_inputs().enumerate() {
            if fanout[net.index()] == 1 {
                for p in [Polarity::StuckAt0, Polarity::StuckAt1] {
                    join(
                        &mut uf,
                        id(
                            FaultSite::Pin {
                                gate: gi,
                                pin: pin as u8,
                            },
                            p,
                        ),
                        id(FaultSite::Stem(net), p),
                    );
                }
            }
        }
    }

    for (fi, ff) in netlist.dffs().iter().enumerate() {
        let fi = fi as u32;
        for p in [Polarity::StuckAt0, Polarity::StuckAt1] {
            // D pin ≡ Q stem (rule 4).
            join(
                &mut uf,
                id(FaultSite::DffD(fi), p),
                id(FaultSite::Stem(ff.q), p),
            );
            // Fanout-free D net folds into its stem (rule 3).
            if fanout[ff.d.index()] == 1 {
                join(
                    &mut uf,
                    id(FaultSite::DffD(fi), p),
                    id(FaultSite::Stem(ff.d), p),
                );
            }
        }
    }

    uf
}

/// For every fault in `list` (in list order), the index *within `list`*
/// of its equivalence-class representative. Representatives map to
/// themselves; `collapse` keeps exactly the faults `i` with `reps[i] ==
/// i`. This exposes class membership so campaigns can cross-check that
/// collapsed-away faults really share their representative's detection
/// behaviour.
pub fn class_representatives(netlist: &Netlist, list: &FaultList) -> Vec<usize> {
    let mut uf = build_equivalence(netlist, list);
    (0..list.faults.len() as u32)
        .map(|i| uf.find(i) as usize)
        .collect()
}

/// Collapse an uncollapsed fault list into equivalence-class
/// representatives with weights.
pub fn collapse(netlist: &Netlist, list: FaultList) -> FaultList {
    let mut uf = build_equivalence(netlist, &list);

    // Gather classes.
    let n = list.faults.len();
    let mut class_weight: HashMap<u32, u32> = HashMap::new();
    for i in 0..n as u32 {
        let r = uf.find(i);
        *class_weight.entry(r).or_insert(0) += list.weight[i as usize];
    }
    let mut out = FaultList {
        faults: Vec::with_capacity(class_weight.len()),
        component: Vec::with_capacity(class_weight.len()),
        weight: Vec::with_capacity(class_weight.len()),
        total_uncollapsed: list.total_uncollapsed,
    };
    for i in 0..n as u32 {
        if uf.find(i) == i {
            out.faults.push(list.faults[i as usize]);
            out.component.push(list.component[i as usize]);
            out.weight.push(class_weight[&i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultList;
    use netlist::NetlistBuilder;

    #[test]
    fn inverter_chain_collapses_hard() {
        // a -> NOT -> NOT -> y : every internal fault collapses onto the
        // stem chain. Universe: stems a,x,y (6), pins (4) = 10.
        // x is fanout-1, a is fanout-1: pin faults fold into stems, then
        // inverter rule merges across. Expect classes: the whole chain is
        // one equivalence family of 2 polarities = 2 classes... plus y.
        let mut b = NetlistBuilder::new("ii");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let fl = FaultList::extract(&nl);
        assert_eq!(fl.len(), 10);
        let c = fl.collapsed(&nl);
        // a sa0 ≡ pin0(g0) sa0 ≡ x sa1 ≡ pin0(g1) sa1 ≡ y sa0 — one class
        // per polarity.
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_uncollapsed, 10);
        assert_eq!(c.weight.iter().sum::<u32>(), 10);
    }

    #[test]
    fn nand_controlling_faults_collapse() {
        let mut b = NetlistBuilder::new("nand");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.nand2(a, c);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let fl = FaultList::extract(&nl);
        // stems a,b,y (6) + pins (4) = 10.
        assert_eq!(fl.len(), 10);
        let col = fl.collapsed(&nl);
        // pin sa0 ≡ y sa1 (x2 pins, + fanout-free folds pins into stems):
        // a sa0 ≡ pin0 sa0 ≡ y sa1 ≡ pin1 sa0 ≡ b sa0  -> 1 class
        // a sa1 ≡ pin0 sa1 ; b sa1 ≡ pin1 sa1 ; y sa0  -> 3 classes
        assert_eq!(col.len(), 4);
    }

    #[test]
    fn fanout_branches_stay_distinct() {
        // a feeds two AND gates: branch faults must NOT collapse with each
        // other (only controlling-value folding onto the two distinct
        // outputs applies).
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let y1 = b.and2(a, c);
        let y2 = b.and2(a, d);
        b.output("y1", y1);
        b.output("y2", y2);
        let nl = b.finish().unwrap();
        let fl = FaultList::extract(&nl).collapsed(&nl);
        // The two sa1 branch faults of `a` must both survive (they are not
        // equivalent: one affects y1 only, the other y2 only).
        let sa1_branches = fl
            .faults
            .iter()
            .filter(|f| {
                matches!(f.site, FaultSite::Pin { pin: 0, .. })
                    && f.polarity == Polarity::StuckAt1
            })
            .count();
        assert_eq!(sa1_branches, 2);
    }

    #[test]
    fn weights_always_sum_to_universe() {
        let mut b = NetlistBuilder::new("mix");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let x = b.xor_word(&a, &c);
        let s = b.or_tree(&x);
        let q = b.dff(s, false);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let fl = FaultList::extract(&nl);
        let total = fl.len();
        let col = fl.collapsed(&nl);
        assert_eq!(col.weight.iter().sum::<u32>() as usize, total);
        assert!(col.len() < total, "collapsing should reduce the list");
    }

    #[test]
    fn dff_d_equivalent_to_q() {
        let mut b = NetlistBuilder::new("ff");
        let a = b.input("a");
        let q = b.dff(a, false);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let col = FaultList::extract(&nl).collapsed(&nl);
        // a, q stems + DffD: a ≡ DffD ≡ q per polarity -> 2 classes.
        assert_eq!(col.len(), 2);
    }
}
